(** Failure patterns (paper §3.2).

    A failure pattern [F] maps each time [t] to the set of processes that
    have crashed by [t]; crashed processes never recover. We represent [F]
    by one crash time per process ([never] for correct processes), which
    is equivalent for monotone patterns. *)

type t

val never : int
(** Sentinel crash time of a correct process (greater than any run time). *)

val make : n_plus_1:int -> crashes:(Pid.t * int) list -> t
(** [make ~n_plus_1 ~crashes] crashes each listed pid at its listed time
    (the process takes no step at or after that time). Raises if a pid is
    listed twice, out of range, a crash time is negative, or no process
    would remain correct. *)

val no_failures : n_plus_1:int -> t

val random : Rng.t -> n_plus_1:int -> max_faulty:int -> latest:int -> t
(** A random pattern with at most [max_faulty] crashes (and at least one
    correct process), crash times uniform in [\[0, latest\]]. *)

val n_plus_1 : t -> int
val crash_time : t -> Pid.t -> int

val crashed_at : t -> Pid.t -> int -> bool
(** [crashed_at t p time] is [p ∈ F(time)]. *)

val faulty : t -> Pid.Set.t
val correct : t -> Pid.Set.t
val is_correct : t -> Pid.t -> bool

val max_crash_time : t -> int
(** Latest finite crash time, or [0] if failure-free: after this time all
    faulty processes have crashed. *)

val env_ok : f:int -> t -> bool
(** [env_ok ~f t] holds iff [t] belongs to the environment E_f, i.e. at
    most [f] processes are faulty (paper §5.3). *)

val pp : Format.formatter -> t -> unit
