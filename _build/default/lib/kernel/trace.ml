type event =
  | Step of { pid : Pid.t; time : int; kind : Sim.kind; note : string option }
  | Crash of { pid : Pid.t; time : int }

type t = event list
type builder = { mutable rev_events : event list }

let builder () = { rev_events = [] }
let record b e = b.rev_events <- e :: b.rev_events
let finish b = List.rev b.rev_events

let steps_of t pid =
  List.length
    (List.filter
       (function Step s -> Pid.equal s.pid pid | Crash _ -> false)
       t)

let events_of t pid =
  List.filter
    (function
      | Step s -> Pid.equal s.pid pid
      | Crash c -> Pid.equal c.pid pid)
    t

let outputs ?label t =
  List.filter_map
    (function
      | Step { pid; time; kind = Sim.Output { label = l; value }; _ } ->
          if match label with Some want -> String.equal want l | None -> true
          then Some (pid, time, l, value)
          else None
      | Step _ | Crash _ -> None)
    t

let inputs ?label t =
  List.filter_map
    (function
      | Step { pid; time; kind = Sim.Input { label = l; value }; _ } ->
          if match label with Some want -> String.equal want l | None -> true
          then Some (pid, time, l, value)
          else None
      | Step _ | Crash _ -> None)
    t

let schedule t =
  List.filter_map
    (function Step { pid; _ } -> Some pid | Crash _ -> None)
    t

let last_time t =
  List.fold_left
    (fun acc -> function Step { time; _ } | Crash { time; _ } -> max acc time)
    0 t

let queries t ~detector =
  List.filter_map
    (function
      | Step { pid; time; kind = Sim.Query { detector = d }; _ }
        when String.equal d detector ->
          Some (pid, time)
      | Step _ | Crash _ -> None)
    t

let query_values t ~detector =
  List.filter_map
    (function
      | Step { pid; time; kind = Sim.Query { detector = d }; note = Some v }
        when String.equal d detector ->
          Some (pid, time, v)
      | Step _ | Crash _ -> None)
    t

let pp_event ppf = function
  | Step { pid; time; kind; note } ->
      Format.fprintf ppf "%6d %a %a%s" time Pid.pp pid Sim.kind_pp kind
        (match note with Some n -> " = " ^ n | None -> "")
  | Crash { pid; time } ->
      Format.fprintf ppf "%6d %a CRASH" time Pid.pp pid

let pp ppf t =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_newline ppf ())
    pp_event ppf t
