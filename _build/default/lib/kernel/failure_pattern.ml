type t = { n_plus_1 : int; crash_time : int array }

let never = max_int

let make ~n_plus_1 ~crashes =
  if n_plus_1 <= 0 then invalid_arg "Failure_pattern.make: empty system";
  let crash_time = Array.make n_plus_1 never in
  List.iter
    (fun (pid, time) ->
      if pid < 0 || pid >= n_plus_1 then
        invalid_arg "Failure_pattern.make: pid out of range";
      if time < 0 then invalid_arg "Failure_pattern.make: negative crash time";
      if crash_time.(pid) <> never then
        invalid_arg "Failure_pattern.make: duplicate pid";
      crash_time.(pid) <- time)
    crashes;
  if Array.for_all (fun c -> c <> never) crash_time then
    invalid_arg "Failure_pattern.make: at least one process must be correct";
  { n_plus_1; crash_time }

let no_failures ~n_plus_1 = make ~n_plus_1 ~crashes:[]

let random rng ~n_plus_1 ~max_faulty ~latest =
  if max_faulty >= n_plus_1 || max_faulty < 0 then
    invalid_arg "Failure_pattern.random: max_faulty out of range";
  let k = Rng.int rng (max_faulty + 1) in
  let pids = Array.of_list (Pid.all ~n_plus_1) in
  Rng.shuffle rng pids;
  let crashes =
    List.init k (fun i -> (pids.(i), Rng.int_in rng 0 latest))
  in
  make ~n_plus_1 ~crashes

let n_plus_1 t = t.n_plus_1
let crash_time t pid = t.crash_time.(pid)
let crashed_at t pid time = t.crash_time.(pid) <= time

let faulty t =
  Pid.all ~n_plus_1:t.n_plus_1
  |> List.filter (fun p -> t.crash_time.(p) <> never)
  |> Pid.Set.of_list

let correct t = Pid.Set.complement ~n_plus_1:t.n_plus_1 (faulty t)
let is_correct t pid = t.crash_time.(pid) = never

let max_crash_time t =
  Array.fold_left
    (fun acc c -> if c <> never && c > acc then c else acc)
    0 t.crash_time

let env_ok ~f t = Pid.Set.cardinal (faulty t) <= f

let pp ppf t =
  let crashes =
    Pid.all ~n_plus_1:t.n_plus_1
    |> List.filter_map (fun p ->
           if t.crash_time.(p) = never then None
           else Some (Format.asprintf "%a@%d" Pid.pp p t.crash_time.(p)))
  in
  match crashes with
  | [] -> Format.fprintf ppf "failure-free(%d procs)" t.n_plus_1
  | l ->
      Format.fprintf ppf "crashes[%s](%d procs)" (String.concat ", " l)
        t.n_plus_1
