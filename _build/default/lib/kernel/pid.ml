type t = int

let of_index i =
  if i < 0 then invalid_arg "Pid.of_index: negative index";
  i

let to_int t = t
let compare = Int.compare
let equal = Int.equal
let pp ppf t = Format.fprintf ppf "p%d" (t + 1)
let to_string t = Format.asprintf "%a" pp t

let all ~n_plus_1 =
  if n_plus_1 <= 0 then invalid_arg "Pid.all: need at least one process";
  List.init n_plus_1 (fun i -> i)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = struct
  include Set.Make (Ord)

  let of_indices indices = of_list (List.map of_index indices)

  let pp ppf s =
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         pp)
      (elements s)

  let to_string s = Format.asprintf "%a" pp s
  let full ~n_plus_1 = of_list (all ~n_plus_1)
  let complement ~n_plus_1 s = diff (full ~n_plus_1) s

  let subsets ~n_plus_1 =
    let pids = Array.of_list (all ~n_plus_1) in
    let n = Array.length pids in
    if n > 20 then invalid_arg "Pid.Set.subsets: system too large";
    let rec build mask =
      if mask > (1 lsl n) - 1 then []
      else
        let s =
          List.filter (fun i -> mask land (1 lsl i) <> 0) (List.init n Fun.id)
          |> List.map (fun i -> pids.(i))
          |> of_list
        in
        s :: build (mask + 1)
    in
    build 1
end

module Map = Map.Make (Ord)
