(** One-call drivers for whole protocol runs: build a world (pattern,
    detector, schedule), run a protocol to completion or horizon, and
    return the measurements the experiments aggregate. *)

open Kernel
open Agreement

type measurements = {
  verdict : Sa_spec.verdict;
  last_decision_time : int;  (** time of the latest decision, 0 if none *)
  first_decision_time : int;  (** 0 if none *)
  total_steps : int;
  rounds : int;  (** highest protocol round entered *)
  outcome : Scheduler.outcome;
  query_violations : int;
      (** run-condition (2) breaches found on the trace (always 0 for a
          sound simulator — checked on every harness run) *)
}

val ok : measurements -> bool
(** Spec verdict all green and no query violations. *)

type world = {
  pattern : Failure_pattern.t;
  policy : Policy.t;
  world_rng : Rng.t;  (** generator to derive detector randomness from *)
}

val random_world :
  seed:int -> n_plus_1:int -> max_faulty:int -> ?latest:int -> unit -> world
(** A random failure pattern with at most [max_faulty] crashes and a
    seeded random scheduler, both derived deterministically from
    [seed]. *)

val run_fig1 :
  ?horizon:int ->
  ?stab_time:int ->
  ?escapes:Upsilon_sa.escapes ->
  world ->
  measurements
(** Fig 1 with a fresh Υ history over the world's pattern; inputs are
    distinct per process. *)

val run_fig2 :
  ?horizon:int ->
  ?stab_time:int ->
  ?snapshot_impl:Memory.Snap.impl ->
  f:int ->
  world ->
  measurements

val run_omega_k_baseline :
  ?horizon:int -> ?stab_time:int -> k:int -> world -> measurements
(** The Ωₖ-based baseline under the same conventions. *)

val run_async_attempt :
  ?horizon:int -> ?lockstep:bool -> world -> measurements
(** The detector-free skeleton; [lockstep] (default true) replaces the
    world's policy with round-robin, the adversarial schedule. *)

val run_extraction_of :
  ?horizon:int ->
  ?tail:int ->
  f:int ->
  source:
    [ `Omega
    | `Omega_k of int
    | `Ev_perfect
    | `Perfect
    | `Upsilon_f
    | `Vitality of Pid.t
    | `Omega_batched of int ]
  ->
  world ->
  (unit, string) result * int
(** Run the Fig-3 extraction from the given stable source; returns the
    Υᶠ-spec verdict on the extracted variable and the time of the last
    extracted-output change among correct processes (stabilization
    time). *)
