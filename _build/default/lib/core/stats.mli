(** Descriptive statistics for experiment aggregation. *)

type summary = {
  count : int;
  mean : float;
  median : float;
  p95 : float;
  min : int;
  max : int;
}

val summarize : int list -> summary
(** Raises on the empty list. *)

val mean : float list -> float
(** 0 on the empty list. *)

val mean_int : int list -> float

val percentile : float -> int list -> float
(** [percentile q xs] with q in [0,1], nearest-rank with linear
    interpolation; raises on the empty list. *)

val pp : Format.formatter -> summary -> unit
