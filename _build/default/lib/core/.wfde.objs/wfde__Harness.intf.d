lib/core/harness.mli: Agreement Failure_pattern Kernel Memory Pid Policy Rng Sa_spec Scheduler Upsilon_sa
