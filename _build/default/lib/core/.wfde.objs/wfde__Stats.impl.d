lib/core/stats.ml: Array Float Format Int List
