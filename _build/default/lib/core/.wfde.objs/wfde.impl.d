lib/core/wfde.ml: Agreement Converge Detectors Experiments Harness Kernel Memory Reduction Report Stats
