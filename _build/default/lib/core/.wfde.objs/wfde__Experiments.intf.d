lib/core/experiments.mli: Format Report
