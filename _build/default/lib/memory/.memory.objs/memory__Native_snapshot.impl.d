lib/memory/native_snapshot.ml: Array Kernel Sim
