lib/memory/snapshot.ml: Array Printf Register
