lib/memory/consensus_obj.ml: Kernel Pid Printf Sim
