lib/memory/snap.mli:
