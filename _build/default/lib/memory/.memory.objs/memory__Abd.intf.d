lib/memory/abd.mli: Kernel Pid
