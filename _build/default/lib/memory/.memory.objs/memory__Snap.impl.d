lib/memory/snap.ml: Native_snapshot Snapshot
