lib/memory/native_snapshot.mli:
