lib/memory/register.ml: Array Kernel Printf Sim
