lib/memory/register.mli:
