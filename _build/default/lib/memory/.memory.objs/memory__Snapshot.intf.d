lib/memory/snapshot.mli:
