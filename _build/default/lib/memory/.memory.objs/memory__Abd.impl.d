lib/memory/abd.ml: Array Format Hashtbl Int Kernel List Network Pid Sim String
