lib/memory/consensus_obj.mli: Kernel Pid
