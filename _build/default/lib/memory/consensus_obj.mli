(** One-shot consensus objects granted as atomic primitives.

    Models the "n-process consensus objects" of Corollaries 3–4 and the
    type-booster setting of [13,21]: an object on which at most [ports]
    distinct processes may ever operate, returning the first value
    proposed to every proposer. [propose] is one step. *)

open Kernel

type 'a t

exception Port_exhausted of string
(** Raised when a [ports]-limited object is accessed by more distinct
    processes than it has ports — the simulator's rendering of "an
    n-consensus object cannot serve n+1 processes". *)

val create : name:string -> ports:int option -> 'a t
(** [ports = None] means unrestricted (full consensus object). *)

val name : 'a t -> string

val propose : 'a t -> 'a -> 'a
(** One step: decide and return the object's value (the first proposal).
    Raises {!Port_exhausted} if the caller is the [ports+1]-th distinct
    process to touch the object. *)

val decided : 'a t -> 'a option
(** Oracle access, no step. *)

val accessors : 'a t -> Pid.Set.t
