(** First-class snapshot objects: the register-built Afek et al.
    construction and the native single-step object behind one interface,
    so protocols can be run on either (the A3 ablation measures what the
    faithful construction costs inside Fig 2). *)

type 'a t

type impl = Registers | Native

val make : impl:impl -> name:string -> size:int -> init:(int -> 'a) -> 'a t
(** [Registers] is the default, paper-faithful choice. *)

val update : 'a t -> me:int -> 'a -> unit
val scan : 'a t -> 'a array
val impl_name : impl -> string
