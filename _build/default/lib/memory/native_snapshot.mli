(** A snapshot object granted as an atomic primitive: [update] and [scan]
    are each a single step. Not part of the paper's register-only model —
    exists for the A1 ablation bench, quantifying what the register-built
    {!Snapshot} costs the protocols. *)

type 'a t

val create : name:string -> size:int -> init:(int -> 'a) -> 'a t

val size : 'a t -> int

val update : 'a t -> me:int -> 'a -> unit
(** One step. *)

val scan : 'a t -> 'a array
(** One step. *)

val peek : 'a t -> 'a array
