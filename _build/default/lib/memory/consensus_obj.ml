open Kernel

exception Port_exhausted of string

type 'a t = {
  obj_name : string;
  ports : int option;
  mutable value : 'a option;
  mutable users : Pid.Set.t;
}

let create ~name ~ports = { obj_name = name; ports; value = None; users = Pid.Set.empty }
let name t = t.obj_name

let propose t v =
  Sim.atomic
    (Sim.Write { obj = t.obj_name })
    (fun ctx ->
      if not (Pid.Set.mem ctx.Sim.pid t.users) then begin
        (match t.ports with
        | Some limit when Pid.Set.cardinal t.users >= limit ->
            raise
              (Port_exhausted
                 (Printf.sprintf "%s: %d ports, %s is one too many" t.obj_name
                    limit (Pid.to_string ctx.Sim.pid)))
        | Some _ | None -> ());
        t.users <- Pid.Set.add ctx.Sim.pid t.users
      end;
      match t.value with
      | Some w -> w
      | None ->
          t.value <- Some v;
          v)

let decided t = t.value
let accessors t = t.users
