type 'a t = { do_update : me:int -> 'a -> unit; do_scan : unit -> 'a array }

type impl = Registers | Native

let make ~impl ~name ~size ~init =
  match impl with
  | Registers ->
      let s = Snapshot.create ~name ~size ~init in
      {
        do_update = (fun ~me v -> Snapshot.update s ~me v);
        do_scan = (fun () -> Snapshot.scan s);
      }
  | Native ->
      let s = Native_snapshot.create ~name ~size ~init in
      {
        do_update = (fun ~me v -> Native_snapshot.update s ~me v);
        do_scan = (fun () -> Native_snapshot.scan s);
      }

let update t ~me v = t.do_update ~me v
let scan t = t.do_scan ()
let impl_name = function Registers -> "registers" | Native -> "native"
