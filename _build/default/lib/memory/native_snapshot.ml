open Kernel

type 'a t = { nat_name : string; arr : 'a array }

let create ~name ~size ~init = { nat_name = name; arr = Array.init size init }
let size t = Array.length t.arr

let update t ~me v =
  Sim.atomic (Sim.Write { obj = t.nat_name }) (fun _ -> t.arr.(me) <- v)

let scan t = Sim.atomic (Sim.Read { obj = t.nat_name }) (fun _ -> Array.copy t.arr)
let peek t = Array.copy t.arr
