(** A synthetic stable detector: eventually reports whether a designated
    process is correct.

    Range {true, false}; eventually all correct processes permanently see
    [true] iff the watched process is correct. For a 2-process system
    watching p1 this is exactly Ω in disguise, so it is non-trivial; its
    point here is to be a {e minimal-looking} stable detector whose Fig-3
    ϕ-map is easy to derive by hand, exercising the extraction (E5) on
    something other than the classical oracles. *)

open Kernel

val make :
  ?name:string ->
  rng:Rng.t ->
  pattern:Failure_pattern.t ->
  watched:Pid.t ->
  ?stab_time:int ->
  unit ->
  bool Detector.t

val check :
  bool Detector.t ->
  pattern:Failure_pattern.t ->
  watched:Pid.t ->
  stab_by:int ->
  horizon:int ->
  (unit, string) result
