(** The dummy failure detector (paper §6.3): a constant output,
    implementable in any asynchronous system, hence carrying no failure
    information. A problem solvable with a dummy detector is f-resilient
    solvable; a detector that solves an f-resilient impossible problem is
    f-non-trivial. Lemma 8's proof swaps a detector for a dummy — the
    test suite replays that swap. *)

val make :
  ?name:string ->
  value:'v ->
  pp:(Format.formatter -> 'v -> unit) ->
  equal:('v -> 'v -> bool) ->
  unit ->
  'v Detector.t
