(** The failure detector Υᶠ (paper §5.3).

    Range: sets [U ⊆ Π] with [|U| ≥ n + 1 − f]. In every history there is
    a time after which the same set [U] is permanently output at all
    correct processes, and [U] is not the set of correct processes.
    Before that time the output is arbitrary: it may change at every
    query and differ across processes (we draw it from seeded chaos,
    staying inside the range).

    [Υ = Υⁿ]: with [f = n] the range is all non-empty subsets of Π and
    the constraint is exactly the one of §4. *)

open Kernel

val legal_stable_sets : pattern:Failure_pattern.t -> f:int -> Pid.Set.t list
(** All sets a history of Υᶠ may stabilize to under the pattern: size
    ≥ n+1−f and different from [correct(F)]. Never empty (Π qualifies
    whenever some process is faulty; any co-singleton beats a
    failure-free pattern). *)

val make :
  ?name:string ->
  rng:Rng.t ->
  pattern:Failure_pattern.t ->
  f:int ->
  ?stable_set:Pid.Set.t ->
  ?stab_time:int ->
  unit ->
  Pid.Set.t Detector.t
(** One admissible history. [stable_set] defaults to a uniformly chosen
    legal set; [stab_time] to a random time in [\[0, 150\]]. Raises if
    [stable_set] is illegal for the pattern (wrong size, or equal to the
    correct set) or the pattern exceeds [f] failures. *)

val stab_time_of : Pid.Set.t Detector.t -> int
(** The stabilization time the history was built with (harness metadata;
    protocols must not peek). Raises on detectors not built by {!make}. *)

val check :
  Pid.Set.t Detector.t ->
  pattern:Failure_pattern.t ->
  f:int ->
  stab_by:int ->
  horizon:int ->
  (unit, string) result
(** Verify the Υᶠ specification on the window [\[stab_by, horizon\]]:
    range discipline everywhere in [\[0, horizon\]], a common permanent
    value at correct processes from [stab_by] on, and that value distinct
    from the correct set. *)
