let make ?name ~value ~pp ~equal () =
  let name = match name with Some n -> n | None -> "dummy" in
  { Detector.name; history = (fun _ _ -> value); pp; equal }
