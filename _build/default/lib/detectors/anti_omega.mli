(** The anti-Ω failure detector of Zielinski (paper §2, [22,23]).

    Outputs a single process id per query; the guarantee is that some
    correct process is output only finitely often at correct processes.
    anti-Ω is {e unstable} — its output never needs to stabilize — which
    is exactly why the paper's minimality result (restricted to stable
    detectors) does not apply to it, and why Zielinski could prove it
    strictly weaker than Υ. We implement it to mark the boundary of the
    stable class in tests; the Υ→anti-Ω and anti-Ω-based set-agreement
    constructions of [23] are out of scope (see DESIGN.md). *)

open Kernel

val make :
  ?name:string ->
  rng:Rng.t ->
  pattern:Failure_pattern.t ->
  ?spared:Pid.t ->
  ?stab_time:int ->
  unit ->
  Pid.t Detector.t
(** After [stab_time], cycles deterministically through Π − {spared},
    where [spared] is a correct process (default: random correct); before
    that, outputs chaos. *)

val check :
  Pid.t Detector.t ->
  pattern:Failure_pattern.t ->
  stab_by:int ->
  horizon:int ->
  (unit, string) result
(** Checks some correct process is never output at correct processes in
    [\[stab_by, horizon\]] — the bounded rendering of "finitely often". *)
