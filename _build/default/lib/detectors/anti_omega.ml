open Kernel

let make ?name ~rng ~pattern ?spared ?stab_time () =
  let n_plus_1 = Failure_pattern.n_plus_1 pattern in
  let spared =
    match spared with
    | Some p ->
        if not (Failure_pattern.is_correct pattern p) then
          invalid_arg "Anti_omega.make: spared process must be correct";
        p
    | None -> Rng.pick rng (Pid.Set.elements (Failure_pattern.correct pattern))
  in
  let stab_time =
    match stab_time with Some t -> t | None -> Rng.int_in rng 0 150
  in
  let seed = Rng.int rng max_int in
  let name = match name with Some n -> n | None -> "anti_omega" in
  let others =
    Array.of_list
      (List.filter (fun p -> not (Pid.equal p spared)) (Pid.all ~n_plus_1))
  in
  let history pid time =
    if time >= stab_time then others.(time mod Array.length others)
    else Detector.Chaos.pid ~seed ~n_plus_1 pid time
  in
  { Detector.name; history; pp = Pid.pp; equal = Pid.equal }

let check (d : Pid.t Detector.t) ~pattern ~stab_by ~horizon =
  let correct = Pid.Set.elements (Failure_pattern.correct pattern) in
  let outputs = Hashtbl.create 17 in
  List.iter
    (fun p ->
      for time = stab_by to horizon do
        Hashtbl.replace outputs (Detector.sample d p time) ()
      done)
    correct;
  let spared_exists =
    List.exists (fun p -> not (Hashtbl.mem outputs p)) correct
  in
  if spared_exists then Ok ()
  else
    Error
      (Printf.sprintf
         "every correct process was output somewhere in [%d, %d]" stab_by
         horizon)
