(** The failure detector Ωₖ of Neiger (paper §2, [18]).

    Outputs a set of exactly [k] processes; eventually the same set,
    containing at least one correct process, is permanently output at all
    correct processes. [Ω₁ = Ω]. The paper writes Ωₙ for the wait-free
    case and Ωᶠ in the f-resilient case — both are [make ~k:_]. Theorem 1
    (resp. 5) shows Υ (resp. Υᶠ) is strictly weaker. *)

open Kernel

val make :
  ?name:string ->
  rng:Rng.t ->
  pattern:Failure_pattern.t ->
  k:int ->
  ?stable_set:Pid.Set.t ->
  ?stab_time:int ->
  unit ->
  Pid.Set.t Detector.t
(** [stable_set] must have exactly [k] members, at least one correct;
    defaults to a random such set. *)

val check :
  Pid.Set.t Detector.t ->
  pattern:Failure_pattern.t ->
  k:int ->
  stab_by:int ->
  horizon:int ->
  (unit, string) result
