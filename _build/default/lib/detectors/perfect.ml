open Kernel

let crashed_by pattern time =
  Pid.all ~n_plus_1:(Failure_pattern.n_plus_1 pattern)
  |> List.filter (fun p -> Failure_pattern.crashed_at pattern p time)
  |> Pid.Set.of_list

let make ~pattern =
  {
    Detector.name = "perfect";
    history = (fun _pid time -> crashed_by pattern time);
    pp = Pid.Set.pp;
    equal = Pid.Set.equal;
  }

let check (d : Pid.Set.t Detector.t) ~pattern ~horizon =
  let all = Pid.all ~n_plus_1:(Failure_pattern.n_plus_1 pattern) in
  let bad = ref None in
  for time = 0 to horizon do
    List.iter
      (fun p ->
        let want = crashed_by pattern time in
        let got = Detector.sample d p time in
        if (not (Pid.Set.equal got want)) && !bad = None then
          bad :=
            Some
              (Format.asprintf "at (%a, %d): got %a, want %a" Pid.pp p time
                 Pid.Set.pp got Pid.Set.pp want))
      all
  done;
  match !bad with Some msg -> Error msg | None -> Ok ()
