(** The leader oracle Ω of Chandra–Hadzilacos–Toueg, the weakest failure
    detector for consensus (paper §2). Outputs a process id; eventually
    the same correct leader is permanently output at all correct
    processes. In a 2-process system Ω and Υ are equivalent (§4). *)

open Kernel

val make :
  ?name:string ->
  rng:Rng.t ->
  pattern:Failure_pattern.t ->
  ?leader:Pid.t ->
  ?stab_time:int ->
  unit ->
  Pid.t Detector.t
(** [leader] defaults to a random correct process; must be correct. *)

val check :
  Pid.t Detector.t ->
  pattern:Failure_pattern.t ->
  stab_by:int ->
  horizon:int ->
  (unit, string) result
