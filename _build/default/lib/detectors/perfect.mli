(** The perfect failure detector P: at every time, every process is shown
    exactly the set of processes that have crashed so far — strong
    completeness and strong accuracy with no detection delay. Not in the
    paper's results; serves as the top of the detector lattice in tests
    and as the strongest stable input to the Fig-3 extraction. *)

open Kernel

val make : pattern:Failure_pattern.t -> Pid.Set.t Detector.t
(** H(p, t) = F(t). *)

val check :
  Pid.Set.t Detector.t ->
  pattern:Failure_pattern.t ->
  horizon:int ->
  (unit, string) result
