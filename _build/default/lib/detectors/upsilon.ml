open Kernel

let wait_free_f pattern = Failure_pattern.n_plus_1 pattern - 1

let make ?name ~rng ~pattern ?stable_set ?stab_time () =
  Upsilon_f.make ?name ~rng ~pattern ~f:(wait_free_f pattern) ?stable_set
    ?stab_time ()

let legal_stable_sets ~pattern =
  Upsilon_f.legal_stable_sets ~pattern ~f:(wait_free_f pattern)

let check d ~pattern ~stab_by ~horizon =
  Upsilon_f.check d ~pattern ~f:(wait_free_f pattern) ~stab_by ~horizon
