(** The failure detector Υ (paper §4): the wait-free instance Υ = Υⁿ.

    Outputs a non-empty set of processes; eventually the same set [U] is
    permanently output at all correct processes, and [U] is not the set
    of correct processes. *)

open Kernel

val make :
  ?name:string ->
  rng:Rng.t ->
  pattern:Failure_pattern.t ->
  ?stable_set:Pid.Set.t ->
  ?stab_time:int ->
  unit ->
  Pid.Set.t Detector.t
(** [Upsilon_f.make] with [f = n]. *)

val legal_stable_sets : pattern:Failure_pattern.t -> Pid.Set.t list

val check :
  Pid.Set.t Detector.t ->
  pattern:Failure_pattern.t ->
  stab_by:int ->
  horizon:int ->
  (unit, string) result
