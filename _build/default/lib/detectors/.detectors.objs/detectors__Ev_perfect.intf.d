lib/detectors/ev_perfect.mli: Detector Failure_pattern Kernel Pid Rng
