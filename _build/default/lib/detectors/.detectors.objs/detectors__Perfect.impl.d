lib/detectors/perfect.ml: Detector Failure_pattern Format Kernel List Pid
