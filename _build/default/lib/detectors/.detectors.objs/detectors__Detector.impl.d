lib/detectors/detector.ml: Array Failure_pattern Format Kernel List Pid Rng Sim
