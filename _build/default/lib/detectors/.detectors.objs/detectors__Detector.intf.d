lib/detectors/detector.mli: Failure_pattern Format Kernel Pid Rng Sim
