lib/detectors/perfect.mli: Detector Failure_pattern Kernel Pid
