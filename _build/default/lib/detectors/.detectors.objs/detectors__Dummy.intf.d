lib/detectors/dummy.mli: Detector Format
