lib/detectors/upsilon_f.ml: Detector Failure_pattern Format Hashtbl Kernel List Pid Printf Rng
