lib/detectors/omega_k.mli: Detector Failure_pattern Kernel Pid Rng
