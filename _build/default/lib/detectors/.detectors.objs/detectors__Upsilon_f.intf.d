lib/detectors/upsilon_f.mli: Detector Failure_pattern Kernel Pid Rng
