lib/detectors/anti_omega.mli: Detector Failure_pattern Kernel Pid Rng
