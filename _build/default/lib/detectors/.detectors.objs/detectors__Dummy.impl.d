lib/detectors/dummy.ml: Detector
