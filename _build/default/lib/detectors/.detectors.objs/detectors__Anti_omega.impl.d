lib/detectors/anti_omega.ml: Array Detector Failure_pattern Hashtbl Kernel List Pid Printf Rng
