lib/detectors/omega.mli: Detector Failure_pattern Kernel Pid Rng
