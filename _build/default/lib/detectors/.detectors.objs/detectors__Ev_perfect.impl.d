lib/detectors/ev_perfect.ml: Detector Failure_pattern Format Kernel List Pid Rng
