lib/detectors/vitality.ml: Bool Detector Failure_pattern Format Kernel Pid Printf Rng
