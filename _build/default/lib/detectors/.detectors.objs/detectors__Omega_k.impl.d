lib/detectors/omega_k.ml: Array Detector Failure_pattern Format Kernel List Pid Printf Rng
