lib/detectors/omega.ml: Detector Failure_pattern Format Kernel Pid Printf Rng
