lib/detectors/upsilon.mli: Detector Failure_pattern Kernel Pid Rng
