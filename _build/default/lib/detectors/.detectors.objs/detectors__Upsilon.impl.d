lib/detectors/upsilon.ml: Failure_pattern Kernel Upsilon_f
