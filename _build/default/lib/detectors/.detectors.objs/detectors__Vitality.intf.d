lib/detectors/vitality.mli: Detector Failure_pattern Kernel Pid Rng
