(** The maps ϕ_D of Corollary 9, derived by hand for concrete detectors.

    For an f-non-trivial detector [D] with range [R], ϕ_D carries each
    value [d ∈ R] to [(correct(σ), w(σ))] for some sequence
    [σ ∈ (Π × {d})*] that is {e not} an f-resilient sample of [D]: no
    failure pattern whose correct set equals [correct(σ)] admits a
    history of [D] showing [d] at unboundedly many steps of [correct(σ)].
    The paper proves such a map exists for every f-non-trivial detector
    but cannot construct it in general (Lemma 8 is non-constructive); for
    each detector shipped in {!Detectors} the derivation is elementary
    and recorded here:

    - {b Ω}, value [p]: any [C] of size n+1−f avoiding [p] — a constant
      leader must eventually be correct, so "forever [p]" with [p ∉ C]
      has no witness. (Needs f ≥ 1.)
    - {b Ωₖ} (k ≤ f), value [L]: any [C ⊆ Π − L] of size n+1−f — the
      stable committee must intersect the correct set.
    - {b P/◇P}, value [S]: any [C ≠ Π − S] of size n+1−f — suspicions
      must converge to exactly the faulty set.
    - {b Υᶠ} itself, value [U]: [C = U] — Υᶠ may never stabilize on the
      correct set itself. (The extraction is the identity on Υᶠ.)
    - {b Vitality(q)}, value [true]: any [C] of size n+1−f avoiding [q];
      value [false]: any such [C] containing [q].

    [batches] is [w(σ)]: the length of the shortest prefix of σ
    containing all steps of the finitely-appearing processes. All the σ
    above can be chosen with only [correct(σ)]-processes appearing, so
    [batches = 0]; {!with_batches} prepends full sweeps of Π to σ —
    still not a sample (the tail is what is impossible) — to exercise
    the Fig-3 batch-observation machinery. *)

open Kernel

type t = { set : Pid.Set.t; batches : int }
(** (correct(σ), w(σ)). *)

type 'v map = 'v -> t

val pp : Format.formatter -> t -> unit

val target_size : n_plus_1:int -> f:int -> int
(** [n + 1 − f], the required |correct(σ)|. *)

val omega : n_plus_1:int -> f:int -> Pid.t map
val omega_k : n_plus_1:int -> f:int -> k:int -> Pid.Set.t map
(** Requires [k ≤ f]. *)

val suspicion : n_plus_1:int -> f:int -> Pid.Set.t map
(** For P and ◇P (any detector converging to the exact faulty set). *)

val upsilon_f : n_plus_1:int -> f:int -> Pid.Set.t map
val vitality : n_plus_1:int -> f:int -> watched:Pid.t -> bool map

val with_batches : int -> 'v map -> 'v map
(** Override [w(σ)] upward: σ gains a prefix of that many full sweeps of
    Π, so the extraction must observe that many query batches before
    committing to the set. *)
