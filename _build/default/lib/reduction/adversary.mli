(** The adversary of Theorems 1 and 5: Υᶠ cannot be transformed into Ωᶠ
    (2 ≤ f ≤ n; Theorem 1 is the f = n case against Ωₙ).

    A simulator cannot quantify over all candidate reduction algorithms,
    but it can realize the proof's construction against any concrete
    candidate: pin the Υᶠ history to the constant set
    [U = {p1,…,pn}] (legal in every failure-free run), then build the
    schedule phase by phase —

    + run until some process's extracted output is a set [L₁];
    + let every process take exactly one step, then run only [Π − L₁];
      this is indistinguishable, for the running processes, from a run
      where every member of [L₁] has crashed, in which [U] is still a
      legal output — so a correct candidate must eventually output some
      [L₂ ≠ L₁] (else its stable [L₁] contains no correct process in the
      indistinguishable extension);
    + repeat from [L₂].

    Every candidate loses one way or the other: either its output flips
    in every phase (never stabilizes — not a valid Ωᶠ output), or it
    sticks and the harness reports the crash extension under which the
    stuck set contains no correct process. *)

open Kernel

type instance = {
  fibers : Pid.t -> (unit -> unit) list;
  read_output : Pid.t -> Pid.Set.t option;
      (** the candidate's current extracted Ωᶠ output at a process *)
}

type candidate = {
  cand_name : string;
  make : n_plus_1:int -> f:int -> upsilon:Pid.Set.t Sim.source -> instance;
}

type phase = { index : int; output : Pid.Set.t; at_time : int }

type verdict =
  | Never_stabilizes of { flips : int; history : phase list }
      (** the output changed in every phase the budget allowed *)
  | Stuck of { on : Pid.Set.t; phase : int; history : phase list }
      (** the output stabilized on [on] while only [Π − on] was
          scheduled: crashing [on] extends this to a legal run of Υᶠ in
          which the candidate's stable output contains no correct
          process — an Ωᶠ violation *)

val pinned_upsilon : n_plus_1:int -> Pid.Set.t Sim.source
(** The constant history [U = {p1,…,pn}] used throughout the proof. *)

val run :
  candidate ->
  n_plus_1:int ->
  f:int ->
  max_phases:int ->
  phase_budget:int ->
  verdict
(** Drive the construction for up to [max_phases] phases, giving the
    candidate [phase_budget] steps per phase to react. *)

val flips : verdict -> int
val pp_verdict : Format.formatter -> verdict -> unit

(** Natural candidate extractors, each defeated differently. *)
module Candidates : sig
  val complement_pad : candidate
  (** Ωᶠ-output := Π − Υᶠ-output, padded to size f with the smallest
      ids. The natural dual of the Ωᶠ → Υᶠ reduction — it gets stuck. *)

  val static : candidate
  (** Ωᶠ-output := [{p1,…,pf}] forever; the degenerate baseline. *)

  val top_movers : candidate
  (** Ωᶠ-output := the f processes with the highest published
      timestamps (the "recently alive" heuristic) — the adversary makes
      it flip forever. *)

  val rotation : candidate
  (** Ωᶠ-output rotates through f-subsets as the process takes steps —
      never stabilizes even without an adversary. *)

  val complement_rotate : candidate
  (** Complement padded with step-count-rotating filler — hedging the
      padding does not help. *)

  val slow_complement : candidate
  (** Complement-pad that refreshes only every 50 own steps — reacting
      slowly does not help either. *)

  val all : candidate list
end
