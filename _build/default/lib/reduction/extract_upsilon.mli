(** Fig. 3: transforming any stable f-non-trivial failure detector [D]
    into Υᶠ (paper §6.3, Theorem 10).

    Every process runs two tasks (two fibers sharing its crash fate):

    - {b Task 1} periodically queries its module of [D] and publishes the
      value with an ever-increasing timestamp in register [R\[i\]].
    - {b Task 2} proceeds in rounds. It sets the extracted output to Π,
      reads its current value [d] of [D], and computes
      [(S, w) = ϕ_D(d)]. If [S = Π] it simply waits for some process to
      report a value other than [d]. Otherwise it waits until it has
      observed [w] {e batches} — in each batch every process is seen to
      increase its timestamp at least twice while reporting [d] (between
      two such writes the process must have queried [D] and obtained
      [d]) — and then sets the extracted output to [S]; any foreign
      value restarts the round.

    Correctness mirrors the paper's argument: if the output sticks at Π,
    some process stopped sampling, so Π ≠ correct(F); if it sticks at
    [S], the observed batches certify that σ's prefix happened under the
    current pattern, so [S = correct(F)] would make σ an f-resilient
    sample — contradicting the choice of ϕ_D. Either way the stable
    output is a set of ≥ n+1−f processes different from the correct set:
    the output of Υᶠ. *)

open Kernel

type 'v t

val create :
  name:string ->
  n_plus_1:int ->
  f:int ->
  detector:'v Sim.source ->
  equal:('v -> 'v -> bool) ->
  phi:'v Phi.map ->
  'v t

val fibers : 'v t -> me:Pid.t -> (unit -> unit) list
(** The two task fibers for process [me]; both run forever (the
    extraction never quiesces — stop at a horizon). *)

val current_output : 'v t -> Pid.t -> Pid.Set.t option
(** The process's extracted Υᶠ-output (None before the first write). *)

val change_log : 'v t -> (Pid.t * int * Pid.Set.t) list
(** Every change of any process's extracted output, in time order. *)

val check :
  'v t ->
  pattern:Failure_pattern.t ->
  last_time:int ->
  tail:int ->
  (unit, string) result
(** Verify the extracted variable satisfies Υᶠ on this bounded run: no
    correct-process change in the final [tail] time units, a common final
    value at all correct processes, of size ≥ n+1−f, different from the
    correct set. *)
