lib/reduction/extract_upsilon.mli: Failure_pattern Kernel Phi Pid Sim
