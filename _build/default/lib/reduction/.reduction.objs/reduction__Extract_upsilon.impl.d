lib/reduction/extract_upsilon.ml: Array Failure_pattern Format Kernel List Memory Phi Pid Register Sim
