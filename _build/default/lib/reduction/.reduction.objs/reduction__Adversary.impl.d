lib/reduction/adversary.ml: Array Failure_pattern Fiber Format Int Kernel List Memory Pid Policy Printf Register Scheduler Sim
