lib/reduction/phi.mli: Format Kernel Pid
