lib/reduction/adversary.mli: Format Kernel Pid Sim
