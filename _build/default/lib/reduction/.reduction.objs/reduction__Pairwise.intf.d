lib/reduction/pairwise.mli: Detector Detectors Failure_pattern Kernel Pid Sim
