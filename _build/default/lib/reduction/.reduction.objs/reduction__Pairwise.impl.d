lib/reduction/pairwise.ml: Array Detector Detectors Failure_pattern Format Fun Int Kernel List Memory Option Pid Register Sim
