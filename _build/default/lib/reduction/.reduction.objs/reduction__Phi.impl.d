lib/reduction/phi.ml: Format Kernel List Pid
