(** The pairwise detector reductions of §4 and §5.3.

    Zero-step reductions are pointwise output transformations (no shared
    memory needed); the Υ¹→Ω reduction is a genuine algorithm using
    timestamps in registers, provided as {!Omega_from_upsilon1}. *)

open Kernel
open Detectors

val upsilon_of_omega_k :
  n_plus_1:int -> Pid.Set.t Detector.t -> Pid.Set.t Detector.t
(** Ωₖ → Υ (§4): output the complement of the committee. The stable
    committee contains a correct process, so its complement can never be
    the correct set. With k = f this is also the Ωᶠ → Υᶠ reduction of
    §5.3 (complement size n+1−f). *)

val upsilon_of_omega : n_plus_1:int -> Pid.t Detector.t -> Pid.Set.t Detector.t
(** Ω → Υ: complement of the singleton leader. *)

val omega_of_upsilon_2proc : Pid.Set.t Detector.t -> Pid.t Detector.t
(** Υ → Ω in a 2-process system (§4): output the complement of Υ if it
    is a singleton, own id otherwise. Together with {!upsilon_of_omega}
    this witnesses Ω ≡ Υ at n = 1. *)

val anti_omega_of_omega :
  n_plus_1:int -> Pid.t Detector.t -> Pid.t Detector.t
(** Ω → anti-Ω: cycle deterministically over Π − {leader}; the eventual
    leader is correct and eventually never output. *)

val omega_of_ev_perfect :
  n_plus_1:int -> Pid.Set.t Detector.t -> Pid.t Detector.t
(** ◇P → Ω: elect the smallest unsuspected id (classical eventual leader
    election). Once suspicions equal the faulty set, the leader is the
    smallest correct process at every correct process. Composed with
    {!upsilon_of_omega} this chains ◇P → Ω → Υ — every classical oracle
    reaches Υ, as Theorem 10 promises in general. *)

val ev_perfect_of_perfect : Pid.Set.t Detector.t -> Pid.Set.t Detector.t
(** P → ◇P: the identity — perfect suspicions satisfy the eventual
    contract from time 0. Exists to make the lattice inclusions explicit
    in tests. *)

(** Υ¹ → Ω in E₁ (§5.3): every process publishes ever-growing
    timestamps; if Υ¹ outputs a proper subset of Π (size n), elect the
    excluded process; if it outputs Π (exactly one process is faulty),
    elect the smallest id among the n processes with the highest
    timestamps. *)
module Omega_from_upsilon1 : sig
  type t

  val create :
    name:string -> n_plus_1:int -> upsilon1:Pid.Set.t Sim.source -> t

  val fibers : t -> me:Pid.t -> (unit -> unit) list
  val current_leader : t -> Pid.t -> Pid.t option
  val change_log : t -> (Pid.t * int * Pid.t) list

  val check :
    t ->
    pattern:Failure_pattern.t ->
    last_time:int ->
    tail:int ->
    (unit, string) result
  (** Eventually the same correct leader at all correct processes. *)
end
