open Kernel
open Memory
open Detectors

let upsilon_of_omega_k ~n_plus_1 d =
  Detector.map
    ~name:(d.Detector.name ^ ">upsilon")
    (fun committee -> Pid.Set.complement ~n_plus_1 committee)
    ~pp:Pid.Set.pp ~equal:Pid.Set.equal d

let upsilon_of_omega ~n_plus_1 d =
  Detector.map
    ~name:(d.Detector.name ^ ">upsilon")
    (fun leader -> Pid.Set.complement ~n_plus_1 (Pid.Set.singleton leader))
    ~pp:Pid.Set.pp ~equal:Pid.Set.equal d

let omega_of_upsilon_2proc d =
  Detector.mapi
    ~name:(d.Detector.name ^ ">omega")
    (fun me _time u ->
      let complement = Pid.Set.complement ~n_plus_1:2 u in
      if Pid.Set.cardinal complement = 1 then Pid.Set.choose complement else me)
    ~pp:Pid.pp ~equal:Pid.equal d

let anti_omega_of_omega ~n_plus_1 d =
  Detector.mapi
    ~name:(d.Detector.name ^ ">anti")
    (fun _me time leader ->
      let others =
        List.filter (fun p -> not (Pid.equal p leader)) (Pid.all ~n_plus_1)
      in
      List.nth others (time mod List.length others))
    ~pp:Pid.pp ~equal:Pid.equal d

let omega_of_ev_perfect ~n_plus_1 d =
  Detector.mapi
    ~name:(d.Detector.name ^ ">omega")
    (fun me _time suspected ->
      let alive =
        List.filter
          (fun p -> not (Pid.Set.mem p suspected))
          (Pid.all ~n_plus_1)
      in
      match alive with p :: _ -> p | [] -> me)
    ~pp:Pid.pp ~equal:Pid.equal d

let ev_perfect_of_perfect d =
  Detector.map ~name:(d.Detector.name ^ ">ev_perfect") Fun.id ~pp:Pid.Set.pp
    ~equal:Pid.Set.equal d

module Omega_from_upsilon1 = struct
  type t = {
    n_plus_1 : int;
    upsilon1 : Pid.Set.t Sim.source;
    stamps : int Register.t array;
    leaders : Pid.t option array;
    mutable log : (Pid.t * int * Pid.t) list;
  }

  let create ~name ~n_plus_1 ~upsilon1 =
    if n_plus_1 < 2 then
      invalid_arg "Omega_from_upsilon1.create: need >= 2 processes";
    {
      n_plus_1;
      upsilon1;
      stamps = Register.array ~name:(name ^ ".ts") ~size:n_plus_1 ~init:(fun _ -> 0);
      leaders = Array.make n_plus_1 None;
      log = [];
    }

  let set_leader t ~me p =
    let changed =
      match t.leaders.(me) with Some cur -> not (Pid.equal cur p) | None -> true
    in
    if changed then
      Sim.atomic
        (Sim.Output { label = "omega-out"; value = Pid.to_string p })
        (fun ctx ->
          t.leaders.(me) <- Some p;
          t.log <- (me, ctx.Sim.now, p) :: t.log)

  (* Highest-timestamp ranking: the n processes with the largest stamps
     (ties to the smaller pid), then the smallest id among them. *)
  let elect_by_stamps t stamps =
    let ranked =
      List.sort
        (fun (p1, s1) (p2, s2) ->
          if s1 <> s2 then Int.compare s2 s1 else Pid.compare p1 p2)
        (List.mapi (fun p s -> (p, s)) (Array.to_list stamps))
    in
    let top_n = List.filteri (fun i _ -> i < t.n_plus_1 - 1) ranked in
    List.fold_left
      (fun acc (p, _) -> match acc with None -> Some p | Some q -> Some (min p q))
      None top_n
    |> Option.get

  let runner t ~me () =
    while true do
      Sim.atomic
        (Sim.Write { obj = Register.name t.stamps.(me) })
        (fun _ -> Register.poke t.stamps.(me) (Register.peek t.stamps.(me) + 1));
      let stamps = Register.collect t.stamps in
      let u = Sim.query t.upsilon1 in
      let complement = Pid.Set.complement ~n_plus_1:t.n_plus_1 u in
      if Pid.Set.cardinal complement = 1 then
        set_leader t ~me (Pid.Set.choose complement)
      else if Pid.Set.is_empty complement then
        set_leader t ~me (elect_by_stamps t stamps)
      (* |complement| >= 2 is pre-stabilization garbage for Υ¹ (range
         says |U| >= n); keep the previous leader. *)
    done

  let fibers t ~me = [ runner t ~me ]
  let current_leader t pid = t.leaders.(pid)
  let change_log t = List.rev t.log

  let check t ~pattern ~last_time ~tail =
    let correct = Failure_pattern.correct pattern in
    let cutoff = last_time - tail in
    let late =
      List.filter
        (fun (pid, time, _) -> time > cutoff && Pid.Set.mem pid correct)
        (change_log t)
    in
    if late <> [] then
      Error
        (Format.asprintf "leader still changing after %d (%d tail changes)"
           cutoff (List.length late))
    else
      let finals =
        Pid.Set.elements correct |> List.map (fun p -> t.leaders.(p))
      in
      match finals with
      | [] -> Error "no correct process"
      | None :: _ -> Error "a correct process never elected a leader"
      | Some first :: rest ->
          if
            not
              (List.for_all
                 (function Some p -> Pid.equal p first | None -> false)
                 rest)
          then Error "correct processes disagree on the leader"
          else if not (Failure_pattern.is_correct pattern first) then
            Error (Format.asprintf "stable leader %a is faulty" Pid.pp first)
          else Ok ()
end
