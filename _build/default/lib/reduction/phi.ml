open Kernel

type t = { set : Pid.Set.t; batches : int }
type 'v map = 'v -> t

let pp ppf t =
  Format.fprintf ppf "(%a, w=%d)" Pid.Set.pp t.set t.batches

let target_size ~n_plus_1 ~f =
  if f < 1 || f > n_plus_1 - 1 then invalid_arg "Phi: bad f";
  n_plus_1 - f

(* The first [size] pids, in order, drawn from Π minus [avoiding]. *)
let first_avoiding ~n_plus_1 ~size ~avoiding =
  let chosen =
    Pid.all ~n_plus_1
    |> List.filter (fun p -> not (Pid.Set.mem p avoiding))
    |> List.filteri (fun i _ -> i < size)
  in
  if List.length chosen < size then
    invalid_arg "Phi.first_avoiding: not enough processes outside the set";
  Pid.Set.of_list chosen

(* The first [size] pids containing [including]. *)
let first_including ~n_plus_1 ~size ~including =
  let rest =
    Pid.all ~n_plus_1 |> List.filter (fun p -> not (Pid.equal p including))
  in
  let chosen = including :: List.filteri (fun i _ -> i < size - 1) rest in
  Pid.Set.of_list chosen

let omega ~n_plus_1 ~f =
  let size = target_size ~n_plus_1 ~f in
  fun leader ->
    {
      set = first_avoiding ~n_plus_1 ~size ~avoiding:(Pid.Set.singleton leader);
      batches = 0;
    }

let omega_k ~n_plus_1 ~f ~k =
  if k > f then invalid_arg "Phi.omega_k: needs k <= f";
  let size = target_size ~n_plus_1 ~f in
  fun committee ->
    { set = first_avoiding ~n_plus_1 ~size ~avoiding:committee; batches = 0 }

let suspicion ~n_plus_1 ~f =
  let size = target_size ~n_plus_1 ~f in
  fun suspected ->
    let forbidden = Pid.Set.complement ~n_plus_1 suspected in
    (* any size-(n+1-f) set other than Π − suspected *)
    let candidate = first_avoiding ~n_plus_1 ~size ~avoiding:Pid.Set.empty in
    let set =
      if Pid.Set.equal candidate forbidden then
        (* shift by one: drop the smallest, add the smallest not in it *)
        let without_min = Pid.Set.remove (Pid.Set.min_elt candidate) candidate in
        let extra =
          List.find
            (fun p -> not (Pid.Set.mem p candidate))
            (Pid.all ~n_plus_1)
        in
        Pid.Set.add extra without_min
      else candidate
    in
    { set; batches = 0 }

let upsilon_f ~n_plus_1 ~f =
  let size = target_size ~n_plus_1 ~f in
  fun u ->
    if Pid.Set.cardinal u < size then
      invalid_arg "Phi.upsilon_f: value below range size";
    { set = u; batches = 0 }

let vitality ~n_plus_1 ~f ~watched =
  let size = target_size ~n_plus_1 ~f in
  fun verdict ->
    if verdict then
      {
        set =
          first_avoiding ~n_plus_1 ~size ~avoiding:(Pid.Set.singleton watched);
        batches = 0;
      }
    else { set = first_including ~n_plus_1 ~size ~including:watched; batches = 0 }

let with_batches w inner =
  if w < 0 then invalid_arg "Phi.with_batches: negative";
  fun d ->
    let t = inner d in
    { t with batches = max t.batches w }
