open Kernel
open Memory

type 'v t = {
  n_plus_1 : int;
  f : int;
  detector : 'v Sim.source;
  equal : 'v -> 'v -> bool;
  phi : 'v Phi.map;
  regs : ('v option * int) Register.t array; (* R[i] = (last value, stamp) *)
  outputs : Pid.Set.t option array;
  mutable log : (Pid.t * int * Pid.Set.t) list; (* reversed change log *)
}

let create ~name ~n_plus_1 ~f ~detector ~equal ~phi =
  if f < 1 || f > n_plus_1 - 1 then invalid_arg "Extract_upsilon.create: bad f";
  {
    n_plus_1;
    f;
    detector;
    equal;
    phi;
    regs = Register.array ~name:(name ^ ".R") ~size:n_plus_1 ~init:(fun _ -> (None, 0));
    outputs = Array.make n_plus_1 None;
    log = [];
  }

let set_output t ~me s =
  let changed =
    match t.outputs.(me) with Some cur -> not (Pid.Set.equal cur s) | None -> true
  in
  if changed then
    Sim.atomic
      (Sim.Output { label = "upsilon-out"; value = Pid.Set.to_string s })
      (fun ctx ->
        t.outputs.(me) <- Some s;
        t.log <- (me, ctx.Sim.now, s) :: t.log)

(* Task 1: sample D forever, publishing timestamped values. *)
let sampler t ~me () =
  let stamp = ref 0 in
  while true do
    let d = Sim.query t.detector in
    incr stamp;
    Register.write t.regs.(me) (Some d, !stamp)
  done

(* Task 2: the extraction rounds.

   A round restarts only when some process *freshly reports* (a write
   with a higher timestamp) a value different from d — stale register
   contents, e.g. a pre-stabilization value left behind by a crashed
   process, must not restart anything. This is precisely why Task 1
   equips samples with ever-increasing timestamps. *)
let extractor t ~me () =
  let full = Pid.Set.full ~n_plus_1:t.n_plus_1 in
  (* highest timestamp consumed so far, per process; persists across
     rounds so old reports are never re-examined *)
  let consumed = Array.make t.n_plus_1 0 in
  (* One collect sweep: consume all fresh reports. [`Foreign] if any
     fresh report differs from d; otherwise the current stamp vector. *)
  let sweep d =
    let snap = Register.collect t.regs in
    let foreign = ref false in
    Array.iteri
      (fun j (v, stamp) ->
        if stamp > consumed.(j) then begin
          consumed.(j) <- stamp;
          match v with
          | Some x when not (t.equal x d) -> foreign := true
          | Some _ | None -> ()
        end)
      snap;
    if !foreign then `Foreign else `Stamps (Array.map snd snap)
  in
  let rec next_round () =
    set_output t ~me full;
    let d = Sim.query t.detector in
    let { Phi.set; batches } = t.phi d in
    if Pid.Set.equal set full then wait_for_change d
    else
      match sweep d with
      | `Foreign -> next_round ()
      | `Stamps base -> observe_batches d set ~want:batches ~seen:0 ~base
  (* A batch completes once every process has published at least two
     more timestamped reports; any foreign report restarts the round, so
     completing a batch certifies a full sweep of d-queries by Π. *)
  and observe_batches d set ~want ~seen ~base =
    if seen >= want then begin
      set_output t ~me set;
      wait_for_change d
    end
    else
      match sweep d with
      | `Foreign -> next_round ()
      | `Stamps now ->
          if Array.for_all2 (fun s b -> s >= b + 2) now base then
            observe_batches d set ~want ~seen:(seen + 1) ~base:now
          else observe_batches d set ~want ~seen ~base
  and wait_for_change d =
    match sweep d with `Foreign -> next_round () | `Stamps _ -> wait_for_change d
  in
  next_round ()

let fibers t ~me = [ sampler t ~me; extractor t ~me ]
let current_output t pid = t.outputs.(pid)
let change_log t = List.rev t.log

let check t ~pattern ~last_time ~tail =
  let correct = Failure_pattern.correct pattern in
  let cutoff = last_time - tail in
  let late_changes =
    List.filter
      (fun (pid, time, _) -> time > cutoff && Pid.Set.mem pid correct)
      (change_log t)
  in
  if late_changes <> [] then
    Error
      (Format.asprintf "output still changing after %d (%d changes in tail)"
         cutoff (List.length late_changes))
  else
    let finals =
      Pid.Set.elements correct |> List.map (fun p -> t.outputs.(p))
    in
    match finals with
    | [] -> Error "no correct process"
    | None :: _ -> Error "a correct process never produced an output"
    | Some first :: rest ->
        if
          not
            (List.for_all
               (function Some s -> Pid.Set.equal s first | None -> false)
               rest)
        then Error "correct processes disagree on the extracted output"
        else if Pid.Set.cardinal first < t.n_plus_1 - t.f then
          Error
            (Format.asprintf "extracted set %a below range size" Pid.Set.pp
               first)
        else if Pid.Set.equal first correct then
          Error
            (Format.asprintf "extracted set %a equals the correct set"
               Pid.Set.pp first)
        else Ok ()
