(* Exhaustive-prefix exploration: verify safety properties over ALL
   interleavings of the critical early steps (not just sampled ones) for
   small systems, and demonstrate the explorer can actually find a
   planted bug. *)

open Kernel

let checkb = Alcotest.check Alcotest.bool

(* Build a fresh commit-adopt world with distinct inputs; the checker
   asserts the commit-adopt contract on the collected results. *)
let commit_adopt_world n () =
  let inst =
    Converge.Commit_adopt.create ~name:"x" ~size:n ~compare:Int.compare
  in
  let results = ref [] in
  let body pid () =
    let picked, committed = Converge.Commit_adopt.run inst ~me:pid (pid * 7) in
    results := (pid, picked, committed) :: !results
  in
  let procs pid = [ body pid ] in
  let check _trace =
    let picked =
      List.sort_uniq Int.compare (List.map (fun (_, v, _) -> v) !results)
    in
    let committed = List.exists (fun (_, _, c) -> c) !results in
    if List.length !results <> n then Error "not everyone finished"
    else if committed && List.length picked > 1 then
      Error
        (Printf.sprintf "commit with %d distinct picks" (List.length picked))
    else if
      not (List.for_all (fun v -> List.exists (fun p -> p * 7 = v) [ 0; 1; 2; 3 ]) picked)
    then Error "validity violated"
    else Ok ()
  in
  (procs, check)

let test_commit_adopt_exhaustive_2proc () =
  let outcome =
    Explore.exhaustive_prefix
      ~pattern:(Failure_pattern.no_failures ~n_plus_1:2)
      ~depth:11 ~horizon:10_000
      ~make:(commit_adopt_world 2)
      ()
  in
  checkb "many executions" true (outcome.executions > 1_000);
  match outcome.counterexample with
  | None -> ()
  | Some (prefix, msg) ->
      Alcotest.failf "counterexample %s under schedule [%s]" msg
        (String.concat ";" (List.map Pid.to_string prefix))

let test_commit_adopt_exhaustive_3proc () =
  let outcome =
    Explore.exhaustive_prefix
      ~pattern:(Failure_pattern.no_failures ~n_plus_1:3)
      ~depth:7 ~horizon:10_000
      ~make:(commit_adopt_world 3)
      ()
  in
  checkb "many executions" true (outcome.executions > 1_000);
  checkb "no counterexample" true (outcome.counterexample = None)

let test_converge_exhaustive_c_agreement () =
  (* k = 1 converge with 3 distinct inputs: whenever anyone commits, all
     picks agree — over all 3^6 early interleavings. *)
  let make () =
    let inst = Converge.create ~name:"x" ~k:1 ~size:3 ~compare:Int.compare in
    let results = ref [] in
    let body pid () =
      let picked, committed = Converge.run inst ~me:pid (100 + pid) in
      results := (picked, committed) :: !results
    in
    let check _trace =
      let committed = List.exists snd !results in
      let picked = List.sort_uniq Int.compare (List.map fst !results) in
      if committed && List.length picked > 1 then Error "c-agreement broken"
      else Ok ()
    in
    ((fun pid -> [ body pid ]), check)
  in
  let outcome =
    Explore.exhaustive_prefix
      ~pattern:(Failure_pattern.no_failures ~n_plus_1:3)
      ~depth:6 ~horizon:10_000 ~make ()
  in
  checkb "no counterexample" true (outcome.counterexample = None)

let test_explorer_finds_planted_race () =
  (* A deliberately racy "protocol": both processes read a register, then
     write their increment — the classic lost update. Exploration must
     find an interleaving where the final value is 1 instead of 2. *)
  let open Memory in
  let make () =
    let reg = Register.create ~name:"c" 0 in
    let body _pid () =
      let v = Register.read reg in
      Register.write reg (v + 1)
    in
    let check _trace =
      if Register.peek reg = 2 then Ok () else Error "lost update"
    in
    ((fun pid -> [ body pid ]), check)
  in
  let outcome =
    Explore.exhaustive_prefix
      ~pattern:(Failure_pattern.no_failures ~n_plus_1:2)
      ~depth:4 ~horizon:100 ~make ()
  in
  match outcome.counterexample with
  | Some (_, "lost update") -> ()
  | Some (_, other) -> Alcotest.failf "unexpected report %s" other
  | None -> Alcotest.fail "explorer missed the planted race"

let test_schedule_count_bound () =
  Alcotest.check Alcotest.int "3^4" 81
    (Explore.count_schedules ~n_plus_1:3 ~depth:4)

let suite =
  [
    Alcotest.test_case "commit-adopt exhaustive (2 procs, depth 11)" `Slow
      test_commit_adopt_exhaustive_2proc;
    Alcotest.test_case "commit-adopt exhaustive (3 procs, depth 7)" `Slow
      test_commit_adopt_exhaustive_3proc;
    Alcotest.test_case "1-converge exhaustive c-agreement" `Slow
      test_converge_exhaustive_c_agreement;
    Alcotest.test_case "explorer finds planted race" `Quick
      test_explorer_finds_planted_race;
    Alcotest.test_case "schedule count bound" `Quick test_schedule_count_bound;
  ]
