(* Tests for the reduction layer: the Fig-3 extraction of Υᶠ from stable
   detectors (Theorem 10), the pairwise reductions of §4/§5.3, the ϕ_D
   maps, and the Theorem 1/5 adversary. *)

open Kernel
open Detectors
open Reduction

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let expect_ok label = function
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: %s" label msg

(* Run a Fig-3 extraction to a horizon and check the Υᶠ spec on the
   extracted variable. *)
let run_extraction ?(horizon = 120_000) ?(tail = 20_000) ~pattern ~policy ~f
    ~detector ~equal ~phi () =
  let n_plus_1 = Failure_pattern.n_plus_1 pattern in
  let ex =
    Extract_upsilon.create ~name:"ex" ~n_plus_1 ~f ~detector ~equal ~phi
  in
  let result =
    Run.exec ~pattern ~policy ~horizon
      ~procs:(fun pid -> Extract_upsilon.fibers ex ~me:pid)
      ()
  in
  let last_time = Trace.last_time result.trace in
  (ex, Extract_upsilon.check ex ~pattern ~last_time ~tail, result)

(* -- ϕ maps ------------------------------------------------------------------ *)

let test_phi_omega_avoids_leader () =
  let phi = Phi.omega ~n_plus_1:4 ~f:2 in
  List.iter
    (fun leader ->
      let { Phi.set; batches } = phi leader in
      checki "size n+1-f" 2 (Pid.Set.cardinal set);
      checkb "avoids leader" false (Pid.Set.mem leader set);
      checki "no batches" 0 batches)
    (Pid.all ~n_plus_1:4)

let test_phi_omega_k_disjoint () =
  let phi = Phi.omega_k ~n_plus_1:5 ~f:3 ~k:2 in
  let committee = Pid.Set.of_indices [ 1; 3 ] in
  let { Phi.set; _ } = phi committee in
  checki "size n+1-f" 2 (Pid.Set.cardinal set);
  checkb "disjoint from committee" true
    (Pid.Set.is_empty (Pid.Set.inter set committee))

let test_phi_omega_k_requires_k_le_f () =
  Alcotest.check_raises "k > f rejected"
    (Invalid_argument "Phi.omega_k: needs k <= f") (fun () ->
      let (_ : Pid.Set.t Phi.map) = Phi.omega_k ~n_plus_1:4 ~f:1 ~k:2 in
      ())

let test_phi_suspicion_avoids_complement () =
  let n_plus_1 = 4 and f = 2 in
  let phi = Phi.suspicion ~n_plus_1 ~f in
  List.iter
    (fun suspected ->
      let { Phi.set; _ } = phi suspected in
      checki "size n+1-f" (n_plus_1 - f) (Pid.Set.cardinal set);
      checkb "differs from the complement" false
        (Pid.Set.equal set (Pid.Set.complement ~n_plus_1 suspected)))
    (Pid.Set.subsets ~n_plus_1)

let test_phi_upsilon_is_identity () =
  let phi = Phi.upsilon_f ~n_plus_1:4 ~f:2 in
  let u = Pid.Set.of_indices [ 0; 2; 3 ] in
  checkb "identity on the value" true (Pid.Set.equal (phi u).Phi.set u)

let test_phi_vitality_branches () =
  let phi = Phi.vitality ~n_plus_1:3 ~f:2 ~watched:0 in
  checkb "true branch avoids watched" false (Pid.Set.mem 0 (phi true).Phi.set);
  checkb "false branch contains watched" true (Pid.Set.mem 0 (phi false).Phi.set)

let test_phi_with_batches () =
  let phi = Phi.with_batches 3 (Phi.omega ~n_plus_1:3 ~f:2) in
  checki "batches raised" 3 (phi 0).Phi.batches

(* -- Fig 3 extraction --------------------------------------------------------- *)

let test_extract_from_omega () =
  for seed = 1 to 15 do
    let rng = Rng.create (seed * 5) in
    let n_plus_1 = 3 + (seed mod 2) in
    let f = 2 in
    let pattern =
      Failure_pattern.random rng ~n_plus_1 ~max_faulty:f ~latest:200
    in
    let omega = Omega.make ~rng ~pattern ~stab_time:100 () in
    let _, verdict, _ =
      run_extraction ~pattern ~policy:(Policy.random rng) ~f
        ~detector:(Detector.source omega) ~equal:Pid.equal
        ~phi:(Phi.omega ~n_plus_1 ~f) ()
    in
    expect_ok (Printf.sprintf "extract omega seed %d" seed) verdict
  done

let test_extract_from_omega_k () =
  let n_plus_1 = 4 and f = 2 and k = 2 in
  for seed = 1 to 10 do
    let rng = Rng.create (seed * 9) in
    let pattern =
      Failure_pattern.random rng ~n_plus_1 ~max_faulty:f ~latest:150
    in
    let d = Omega_k.make ~rng ~pattern ~k ~stab_time:80 () in
    let _, verdict, _ =
      run_extraction ~pattern ~policy:(Policy.random rng) ~f
        ~detector:(Detector.source d) ~equal:Pid.Set.equal
        ~phi:(Phi.omega_k ~n_plus_1 ~f ~k) ()
    in
    expect_ok (Printf.sprintf "extract omega_k seed %d" seed) verdict
  done

let test_extract_from_ev_perfect () =
  for seed = 1 to 10 do
    let rng = Rng.create (seed * 11) in
    let n_plus_1 = 3 in
    let f = 2 in
    let pattern =
      Failure_pattern.random rng ~n_plus_1 ~max_faulty:f ~latest:150
    in
    let d = Ev_perfect.make ~rng ~pattern ~stab_time:80 () in
    let _, verdict, _ =
      run_extraction ~pattern ~policy:(Policy.random rng) ~f
        ~detector:(Detector.source d) ~equal:Pid.Set.equal
        ~phi:(Phi.suspicion ~n_plus_1 ~f) ()
    in
    expect_ok (Printf.sprintf "extract ev_perfect seed %d" seed) verdict
  done

let test_extract_from_upsilon_f_is_identity () =
  (* Feeding Υᶠ to Fig 3 must re-extract a legal Υᶠ output — and since
     ϕ is the identity, exactly the stable set of the source. *)
  let n_plus_1 = 4 and f = 2 in
  let rng = Rng.create 33 in
  let pattern = Failure_pattern.make ~n_plus_1 ~crashes:[ (1, 50) ] in
  let stable_set = Pid.Set.of_indices [ 0; 1; 2 ] in
  let d = Upsilon_f.make ~rng ~pattern ~f ~stable_set ~stab_time:60 () in
  let ex, verdict, _ =
    run_extraction ~pattern
      ~policy:(Policy.random (Rng.create 34))
      ~f
      ~detector:(Detector.source d) ~equal:Pid.Set.equal
      ~phi:(Phi.upsilon_f ~n_plus_1 ~f) ()
  in
  expect_ok "extract upsilon_f" verdict;
  Pid.Set.iter
    (fun p ->
      match Extract_upsilon.current_output ex p with
      | Some s -> checkb "re-extracted the stable set" true (Pid.Set.equal s stable_set)
      | None -> Alcotest.fail "no output")
    (Failure_pattern.correct pattern)

let test_extract_from_vitality () =
  let n_plus_1 = 3 and f = 2 in
  List.iter
    (fun crashes ->
      let rng = Rng.create 44 in
      let pattern = Failure_pattern.make ~n_plus_1 ~crashes in
      let d = Vitality.make ~rng ~pattern ~watched:0 ~stab_time:70 () in
      let _, verdict, _ =
        run_extraction ~pattern
          ~policy:(Policy.random (Rng.create 45))
          ~f
          ~detector:(Detector.source d) ~equal:Bool.equal
          ~phi:(Phi.vitality ~n_plus_1 ~f ~watched:0) ()
      in
      expect_ok "extract vitality" verdict)
    [ []; [ (0, 60) ]; [ (1, 60) ] ]

let test_extract_with_batches () =
  (* Non-zero w(σ): the extraction must observe whole query batches
     before committing — and still be correct. *)
  let n_plus_1 = 3 and f = 2 in
  let rng = Rng.create 55 in
  let pattern = Failure_pattern.no_failures ~n_plus_1 in
  let omega = Omega.make ~rng ~pattern ~leader:2 ~stab_time:50 () in
  let _, verdict, _ =
    run_extraction ~pattern
      ~policy:(Policy.random (Rng.create 56))
      ~f
      ~detector:(Detector.source omega) ~equal:Pid.equal
      ~phi:(Phi.with_batches 4 (Phi.omega ~n_plus_1 ~f)) ()
  in
  expect_ok "extract with batches" verdict

let test_extract_batches_stall_on_crash () =
  (* With w > 0 and a crash before stabilization-side sampling can
     complete the batches, the output must stay Π — which is legal
     exactly because somebody crashed. *)
  let n_plus_1 = 3 and f = 2 in
  let rng = Rng.create 66 in
  let pattern = Failure_pattern.make ~n_plus_1 ~crashes:[ (0, 10) ] in
  let omega = Omega.make ~rng ~pattern ~leader:2 ~stab_time:0 () in
  let ex, verdict, _ =
    run_extraction ~pattern
      ~policy:(Policy.random (Rng.create 67))
      ~f
      ~detector:(Detector.source omega) ~equal:Pid.equal
      ~phi:(Phi.with_batches 1_000 (Phi.omega ~n_plus_1 ~f)) ()
  in
  expect_ok "stalled batches still legal" verdict;
  Pid.Set.iter
    (fun p ->
      match Extract_upsilon.current_output ex p with
      | Some s ->
          checkb "output stays Pi" true (Pid.Set.equal s (Pid.Set.full ~n_plus_1))
      | None -> Alcotest.fail "no output")
    (Failure_pattern.correct pattern)

let test_extract_round_robin_schedule () =
  let n_plus_1 = 3 and f = 2 in
  let rng = Rng.create 77 in
  let pattern = Failure_pattern.no_failures ~n_plus_1 in
  let omega = Omega.make ~rng ~pattern ~leader:1 ~stab_time:30 () in
  let _, verdict, _ =
    run_extraction ~pattern ~policy:(Policy.round_robin ()) ~f
      ~detector:(Detector.source omega) ~equal:Pid.equal
      ~phi:(Phi.omega ~n_plus_1 ~f) ()
  in
  expect_ok "extraction under round robin" verdict

(* -- pairwise reductions ------------------------------------------------------- *)

let test_upsilon_of_omega_k () =
  for seed = 1 to 20 do
    let rng = Rng.create (seed * 3) in
    let n_plus_1 = 3 + (seed mod 3) in
    let pattern =
      Failure_pattern.random rng ~n_plus_1 ~max_faulty:(n_plus_1 - 1)
        ~latest:50
    in
    let d = Omega_k.make ~rng ~pattern ~k:(n_plus_1 - 1) ~stab_time:60 () in
    let u = Pairwise.upsilon_of_omega_k ~n_plus_1 d in
    match Upsilon.check u ~pattern ~stab_by:60 ~horizon:160 with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "omega_k -> upsilon seed %d: %s" seed msg
  done

let test_upsilon_f_of_omega_f () =
  (* Ωᶠ → Υᶠ: complement has size n+1−f. *)
  for seed = 1 to 20 do
    let rng = Rng.create (seed * 7) in
    let n_plus_1 = 4 in
    let f = 1 + (seed mod 3) in
    let pattern = Failure_pattern.random rng ~n_plus_1 ~max_faulty:f ~latest:50 in
    let d = Omega_k.make ~rng ~pattern ~k:f ~stab_time:60 () in
    let u = Pairwise.upsilon_of_omega_k ~n_plus_1 d in
    match Upsilon_f.check u ~pattern ~f ~stab_by:60 ~horizon:160 with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "omega_f -> upsilon_f seed %d: %s" seed msg
  done

let test_omega_upsilon_equivalence_2proc () =
  (* §4: in a 2-process system, Ω and Υ are interconvertible. *)
  for seed = 1 to 20 do
    let rng = Rng.create (seed * 13) in
    let pattern =
      Failure_pattern.random rng ~n_plus_1:2 ~max_faulty:1 ~latest:40
    in
    (* Ω → Υ *)
    let omega = Omega.make ~rng ~pattern ~stab_time:50 () in
    let u = Pairwise.upsilon_of_omega ~n_plus_1:2 omega in
    (match Upsilon.check u ~pattern ~stab_by:50 ~horizon:150 with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "omega -> upsilon seed %d: %s" seed msg);
    (* Υ → Ω *)
    let upsilon = Upsilon.make ~rng ~pattern ~stab_time:50 () in
    let om = Pairwise.omega_of_upsilon_2proc upsilon in
    (* the leader map may differ across processes only on faulty ones *)
    match Omega.check om ~pattern ~stab_by:50 ~horizon:150 with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "upsilon -> omega seed %d: %s" seed msg
  done

let test_anti_omega_of_omega () =
  for seed = 1 to 20 do
    let rng = Rng.create (seed * 17) in
    let n_plus_1 = 3 + (seed mod 3) in
    let pattern =
      Failure_pattern.random rng ~n_plus_1 ~max_faulty:(n_plus_1 - 1)
        ~latest:40
    in
    let omega = Omega.make ~rng ~pattern ~stab_time:50 () in
    let anti = Pairwise.anti_omega_of_omega ~n_plus_1 omega in
    match Anti_omega.check anti ~pattern ~stab_by:50 ~horizon:250 with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "omega -> anti seed %d: %s" seed msg
  done

let test_omega_of_ev_perfect () =
  (* ◇P → Ω: the smallest unsuspected process is eventually the smallest
     correct process at every correct process. *)
  for seed = 1 to 20 do
    let rng = Rng.create (seed * 19) in
    let n_plus_1 = 3 + (seed mod 3) in
    let pattern =
      Failure_pattern.random rng ~n_plus_1 ~max_faulty:(n_plus_1 - 1)
        ~latest:40
    in
    let dp = Ev_perfect.make ~rng ~pattern ~stab_time:50 () in
    let stable_from = Ev_perfect.stable_from ~pattern ~stab_time:50 in
    let omega = Pairwise.omega_of_ev_perfect ~n_plus_1 dp in
    (match Omega.check omega ~pattern ~stab_by:stable_from ~horizon:(stable_from + 120) with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "ev_perfect -> omega seed %d: %s" seed msg);
    (* the elected leader is exactly the smallest correct pid *)
    let expected =
      Pid.Set.min_elt (Failure_pattern.correct pattern)
    in
    checkb "smallest correct elected" true
      (Pid.equal (Detector.sample omega 0 (stable_from + 1)) expected)
  done

let test_ev_perfect_of_perfect () =
  let pattern = Failure_pattern.make ~n_plus_1:3 ~crashes:[ (1, 20) ] in
  let p = Perfect.make ~pattern in
  let dp = Pairwise.ev_perfect_of_perfect p in
  match Ev_perfect.check dp ~pattern ~stab_by:0 ~horizon:60 with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "perfect is trivially ev_perfect: %s" msg

let test_omega_from_upsilon1 () =
  (* §5.3: Υ¹ → Ω in E₁, both branches (proper subset / Π). *)
  let n_plus_1 = 3 in
  let run_case ~crashes ~stable_set label =
    let rng = Rng.create 88 in
    let pattern = Failure_pattern.make ~n_plus_1 ~crashes in
    let d = Upsilon_f.make ~rng ~pattern ~f:1 ~stable_set ~stab_time:40 () in
    let red =
      Pairwise.Omega_from_upsilon1.create ~name:"o1" ~n_plus_1
        ~upsilon1:(Detector.source d)
    in
    let result =
      Run.exec ~pattern
        ~policy:(Policy.random (Rng.create 89))
        ~horizon:60_000
        ~procs:(fun pid -> Pairwise.Omega_from_upsilon1.fibers red ~me:pid)
        ()
    in
    match
      Pairwise.Omega_from_upsilon1.check red ~pattern
        ~last_time:(Trace.last_time result.trace)
        ~tail:10_000
    with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "%s: %s" label msg
  in
  (* proper subset branch: U of size n = 2; elect the complement *)
  run_case ~crashes:[ (0, 30) ]
    ~stable_set:(Pid.Set.of_indices [ 0; 2 ])
    "proper-subset branch";
  (* Π branch: one faulty process; timestamp election *)
  run_case ~crashes:[ (0, 30) ]
    ~stable_set:(Pid.Set.full ~n_plus_1)
    "full-set branch"

(* -- adversary (Theorems 1 and 5) ------------------------------------------------ *)

let test_adversary_defeats_every_candidate () =
  List.iter
    (fun cand ->
      let verdict =
        Adversary.run cand ~n_plus_1:4 ~f:3 ~max_phases:25 ~phase_budget:6_000
      in
      match verdict with
      | Adversary.Never_stabilizes _ | Adversary.Stuck _ -> ())
    Adversary.Candidates.all

let test_adversary_static_gets_stuck () =
  match
    Adversary.run Adversary.Candidates.static ~n_plus_1:4 ~f:3 ~max_phases:10
      ~phase_budget:4_000
  with
  | Adversary.Stuck { on; _ } ->
      checkb "stuck on its constant" true
        (Pid.Set.equal on (Pid.Set.of_indices [ 0; 1; 2 ]))
  | Adversary.Never_stabilizes _ ->
      Alcotest.fail "static candidate cannot flip"

let test_adversary_flips_top_movers () =
  match
    Adversary.run Adversary.Candidates.top_movers ~n_plus_1:4 ~f:2
      ~max_phases:20 ~phase_budget:8_000
  with
  | Adversary.Never_stabilizes { flips; _ } ->
      checkb "many forced flips" true (flips >= 20)
  | Adversary.Stuck { phase; _ } ->
      (* Even getting stuck is a defeat; but the schedule should keep it
         moving: require several phases happened first. *)
      checkb "ran several phases before sticking" true (phase >= 1)

let test_adversary_theorem1_case () =
  (* Theorem 1 is the f = n case (Ωₙ from Υ). *)
  List.iter
    (fun cand ->
      let verdict =
        Adversary.run cand ~n_plus_1:3 ~f:2 ~max_phases:15 ~phase_budget:5_000
      in
      checkb
        (Printf.sprintf "candidate '%s' defeated" cand.Adversary.cand_name)
        true
        (match verdict with
        | Adversary.Never_stabilizes _ | Adversary.Stuck _ -> true))
    Adversary.Candidates.all

let test_adversary_rejects_f_one () =
  (* The theorem needs f >= 2 (at f = 1, Υ¹ ≡ Ω ≡ Ω¹ and the reduction
     exists — see Omega_from_upsilon1). *)
  Alcotest.check_raises "f=1 rejected"
    (Invalid_argument "Adversary.run: theorem needs 2 <= f <= n") (fun () ->
      ignore
        (Adversary.run Adversary.Candidates.static ~n_plus_1:3 ~f:1
           ~max_phases:5 ~phase_budget:100))

let qcheck_cases =
  let open QCheck in
  [
    Test.make ~count:25 ~name:"fig3 extraction correct over random worlds"
      small_nat
      (fun seed ->
        let rng = Rng.create ((seed * 71) + 13) in
        let n_plus_1 = 3 + (seed mod 2) in
        let f = 2 in
        let pattern =
          Failure_pattern.random rng ~n_plus_1 ~max_faulty:f ~latest:150
        in
        let omega = Omega.make ~rng ~pattern ~stab_time:120 () in
        let _, verdict, _ =
          run_extraction ~pattern ~policy:(Policy.random rng) ~f
            ~detector:(Detector.source omega) ~equal:Pid.equal
            ~phi:(Phi.omega ~n_plus_1 ~f) ()
        in
        verdict = Ok ());
    Test.make ~count:40 ~name:"complement reduction preserves specs" small_nat
      (fun seed ->
        let rng = Rng.create ((seed * 73) + 17) in
        let n_plus_1 = 3 + (seed mod 4) in
        let k = 1 + (seed mod n_plus_1) in
        let pattern =
          Failure_pattern.random rng ~n_plus_1 ~max_faulty:(n_plus_1 - 1)
            ~latest:40
        in
        let d = Omega_k.make ~rng ~pattern ~k ~stab_time:50 () in
        let u = Pairwise.upsilon_of_omega_k ~n_plus_1 d in
        (* the complement always avoids the correct set eventually *)
        match Detector.stable_value u pattern ~from:50 ~until:150 with
        | Some s -> not (Pid.Set.equal s (Failure_pattern.correct pattern))
        | None -> false);
  ]

let suite =
  [
    Alcotest.test_case "phi omega avoids leader" `Quick
      test_phi_omega_avoids_leader;
    Alcotest.test_case "phi omega_k disjoint" `Quick test_phi_omega_k_disjoint;
    Alcotest.test_case "phi omega_k needs k<=f" `Quick
      test_phi_omega_k_requires_k_le_f;
    Alcotest.test_case "phi suspicion avoids complement" `Quick
      test_phi_suspicion_avoids_complement;
    Alcotest.test_case "phi upsilon identity" `Quick
      test_phi_upsilon_is_identity;
    Alcotest.test_case "phi vitality branches" `Quick test_phi_vitality_branches;
    Alcotest.test_case "phi with batches" `Quick test_phi_with_batches;
    Alcotest.test_case "extract from omega" `Quick test_extract_from_omega;
    Alcotest.test_case "extract from omega_k" `Quick test_extract_from_omega_k;
    Alcotest.test_case "extract from ev_perfect" `Quick
      test_extract_from_ev_perfect;
    Alcotest.test_case "extract from upsilon_f (identity)" `Quick
      test_extract_from_upsilon_f_is_identity;
    Alcotest.test_case "extract from vitality" `Quick test_extract_from_vitality;
    Alcotest.test_case "extract with batches" `Quick test_extract_with_batches;
    Alcotest.test_case "extract batches stall on crash" `Quick
      test_extract_batches_stall_on_crash;
    Alcotest.test_case "extract under round robin" `Quick
      test_extract_round_robin_schedule;
    Alcotest.test_case "omega_k -> upsilon" `Quick test_upsilon_of_omega_k;
    Alcotest.test_case "omega_f -> upsilon_f" `Quick test_upsilon_f_of_omega_f;
    Alcotest.test_case "omega <-> upsilon (2 procs)" `Quick
      test_omega_upsilon_equivalence_2proc;
    Alcotest.test_case "omega -> anti-omega" `Quick test_anti_omega_of_omega;
    Alcotest.test_case "ev_perfect -> omega" `Quick test_omega_of_ev_perfect;
    Alcotest.test_case "perfect -> ev_perfect" `Quick
      test_ev_perfect_of_perfect;
    Alcotest.test_case "upsilon^1 -> omega" `Quick test_omega_from_upsilon1;
    Alcotest.test_case "adversary defeats all candidates" `Quick
      test_adversary_defeats_every_candidate;
    Alcotest.test_case "adversary: static gets stuck" `Quick
      test_adversary_static_gets_stuck;
    Alcotest.test_case "adversary: top-movers flips" `Quick
      test_adversary_flips_top_movers;
    Alcotest.test_case "adversary: theorem 1 case" `Quick
      test_adversary_theorem1_case;
    Alcotest.test_case "adversary rejects f=1" `Quick
      test_adversary_rejects_f_one;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_cases
