(* Tests for the ABD message-passing register emulation: atomicity under
   concurrency and crashes, the quorum liveness boundary, and the
   linearizability checker itself (including a negative case). *)

open Kernel
open Memory

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* Run clients ops over a fresh ABD object; every process runs its server
   fiber plus an optional client fiber. *)
let run_abd ?(horizon = 400_000) ~pattern ~policy ~clients n_plus_1 =
  let abd = Abd.create ~name:"abd" ~n_plus_1 ~init:0 in
  let result =
    Run.exec ~pattern ~policy ~horizon
      ~procs:(fun pid ->
        let client =
          match List.assoc_opt pid clients with
          | Some body -> [ (fun () -> body abd pid) ]
          | None -> []
        in
        Abd.server abd ~me:pid :: client)
      ()
  in
  (abd, result)

let test_write_then_read () =
  let n_plus_1 = 3 in
  let pattern = Failure_pattern.no_failures ~n_plus_1 in
  let observed = ref (-1) in
  let abd, _ =
    run_abd ~pattern
      ~policy:(Policy.round_robin ())
      ~clients:
        [
          ( 0,
            fun abd me ->
              Abd.write abd ~me ~key:"r" 42;
              observed := Abd.read abd ~me ~key:"r" );
        ]
      n_plus_1
  in
  checki "read own write" 42 !observed;
  checkb "log atomic" true (Abd.check_atomicity abd = Ok ());
  checki "two ops logged" 2 (List.length (Abd.oplog abd))

let test_quorum_size () =
  let abd3 = Abd.create ~name:"q3" ~n_plus_1:3 ~init:0 in
  let abd4 = Abd.create ~name:"q4" ~n_plus_1:4 ~init:0 in
  let abd5 = Abd.create ~name:"q5" ~n_plus_1:5 ~init:0 in
  checki "majority of 3" 2 (Abd.quorum abd3);
  checki "majority of 4" 3 (Abd.quorum abd4);
  checki "majority of 5" 3 (Abd.quorum abd5)

let test_concurrent_writers_atomic () =
  for seed = 1 to 40 do
    let n_plus_1 = 3 + (seed mod 3) in
    let rng = Rng.create (seed * 3) in
    let pattern = Failure_pattern.no_failures ~n_plus_1 in
    let body abd me =
      for i = 1 to 3 do
        Abd.write abd ~me ~key:"r" ((100 * (me + 1)) + i);
        ignore (Abd.read abd ~me ~key:"r")
      done
    in
    let clients = List.map (fun p -> (p, body)) (Pid.all ~n_plus_1) in
    let abd, result =
      run_abd ~pattern ~policy:(Policy.random rng) ~clients n_plus_1
    in
    checkb "all ops completed" true
      (List.length (Abd.oplog abd) = n_plus_1 * 6 || result.outcome = Scheduler.Horizon);
    match Abd.check_atomicity abd with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "seed %d: %s" seed msg
  done

let test_atomic_with_minority_crashes () =
  for seed = 1 to 30 do
    let n_plus_1 = 5 in
    let rng = Rng.create (seed * 7) in
    (* at most 2 crashes: a majority of 3 survives *)
    let pattern =
      Failure_pattern.random rng ~n_plus_1 ~max_faulty:2 ~latest:500
    in
    let body abd me =
      for i = 1 to 2 do
        Abd.write abd ~me ~key:"r" ((1000 * (me + 1)) + i);
        ignore (Abd.read abd ~me ~key:"r")
      done
    in
    let clients = List.map (fun p -> (p, body)) (Pid.all ~n_plus_1) in
    let abd, _ =
      run_abd ~horizon:600_000 ~pattern ~policy:(Policy.random rng) ~clients
        n_plus_1
    in
    (* correct clients must have finished all their ops *)
    let completed p =
      List.length (List.filter (fun o -> o.Abd.pid = p) (Abd.oplog abd))
    in
    Pid.Set.iter
      (fun p -> checki "correct client done" 4 (completed p))
      (Failure_pattern.correct pattern);
    match Abd.check_atomicity abd with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "seed %d: %s" seed msg
  done

let test_liveness_needs_majority () =
  (* 2 of 3 processes crash at t=0: the lone survivor's write can never
     reach a majority; the run must hit the horizon with the op logged
     incomplete — and safety (an empty/partial log) still checks. *)
  let n_plus_1 = 3 in
  let pattern = Failure_pattern.make ~n_plus_1 ~crashes:[ (0, 0); (1, 0) ] in
  let abd, result =
    run_abd ~horizon:20_000 ~pattern
      ~policy:(Policy.round_robin ())
      ~clients:[ (2, fun abd me -> Abd.write abd ~me ~key:"r" 9) ]
      n_plus_1
  in
  checkb "hit horizon (blocked)" true (result.outcome = Scheduler.Horizon);
  checki "no op completed" 0 (List.length (Abd.oplog abd));
  checkb "vacuously atomic" true (Abd.check_atomicity abd = Ok ())

let test_reader_sees_latest_completed_write () =
  (* Sequential: w(1) completes, then a read starts — it must return 1,
     never the initial 0. Checked across schedules via the oplog oracle
     plus a direct value assertion. *)
  for seed = 1 to 20 do
    let n_plus_1 = 3 in
    let rng = Rng.create (seed * 11) in
    let pattern = Failure_pattern.no_failures ~n_plus_1 in
    let wrote = ref false in
    let got = ref (-1) in
    let writer abd me =
      Abd.write abd ~me ~key:"r" 1;
      Sim.atomic Sim.Nop (fun _ -> wrote := true)
    in
    let reader abd me =
      (* wait (taking steps) until the write completed, then read *)
      let rec wait () =
        if Sim.atomic Sim.Nop (fun _ -> !wrote) then ()
        else wait ()
      in
      wait ();
      got := Abd.read abd ~me ~key:"r"
    in
    let abd, _ =
      run_abd ~pattern ~policy:(Policy.random rng)
        ~clients:[ (0, writer); (2, reader) ]
        n_plus_1
    in
    checki "read the completed write" 1 !got;
    checkb "atomic" true (Abd.check_atomicity abd = Ok ())
  done

let test_checker_catches_forged_inversion () =
  (* Feed the checker a hand-forged non-linearizable log: a write
     completes strictly before a read begins, yet the read carries an
     older tag. *)
  let abd = Abd.create ~name:"forge" ~n_plus_1:3 ~init:0 in
  let pattern = Failure_pattern.no_failures ~n_plus_1:3 in
  (* perform one real write so the log has the fresh tag *)
  let _ =
    Run.exec ~pattern
      ~policy:(Policy.round_robin ())
      ~horizon:50_000
      ~procs:(fun pid ->
        let client =
          if pid = 0 then [ (fun () -> Abd.write abd ~me:0 ~key:"r" 5) ] else []
        in
        Abd.server abd ~me:pid :: client)
      ()
  in
  match Abd.oplog abd with
  | [ w ] ->
      (* forge a stale read that begins after the write responded *)
      let forged_read =
        {
          Abd.kind = `Read;
          pid = 1;
          key = "r";
          tag = { Abd.seq = 0; writer = 0 };
          value = 0;
          invoked = w.Abd.responded + 10;
          responded = w.Abd.responded + 20;
        }
      in
      let abd2 = Abd.create ~name:"forge2" ~n_plus_1:3 ~init:0 in
      Abd.unsafe_append abd2 w;
      Abd.unsafe_append abd2 forged_read;
      checkb "stale read detected" true (Abd.check_atomicity abd2 <> Ok ())
  | _ -> Alcotest.fail "expected exactly one logged op"

let suite =
  [
    Alcotest.test_case "write then read" `Quick test_write_then_read;
    Alcotest.test_case "quorum sizes" `Quick test_quorum_size;
    Alcotest.test_case "concurrent writers atomic" `Quick
      test_concurrent_writers_atomic;
    Alcotest.test_case "atomic with minority crashes" `Quick
      test_atomic_with_minority_crashes;
    Alcotest.test_case "liveness needs majority" `Quick
      test_liveness_needs_majority;
    Alcotest.test_case "reader sees completed write" `Quick
      test_reader_sees_latest_completed_write;
    Alcotest.test_case "checker catches forged inversion" `Quick
      test_checker_catches_forged_inversion;
  ]
