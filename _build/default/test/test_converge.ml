(* Tests for k-converge: the four properties of §5.1 (C-Termination,
   C-Validity, C-Agreement, Convergence) over deterministic and
   randomized schedules, with and without crashes. *)

open Kernel
open Converge

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* Run one converge instance: inputs.(pid) is pi's input; crashed
   processes may stop mid-protocol. Returns (pid, picked, committed) for
   every process that finished. *)
let run_converge ?(pattern : Failure_pattern.t option) ~policy ~k inputs =
  let n = Array.length inputs in
  let pattern =
    match pattern with
    | Some p -> p
    | None -> Failure_pattern.no_failures ~n_plus_1:n
  in
  let inst = Converge.create ~name:"cv" ~k ~size:n ~compare:Int.compare in
  let results = ref [] in
  let body pid () =
    let picked, committed = Converge.run inst ~me:pid inputs.(pid) in
    results := (pid, picked, committed) :: !results
  in
  let run_result =
    Run.exec ~pattern ~policy ~horizon:500_000
      ~procs:(fun pid -> [ body pid ])
      ()
  in
  (!results, run_result)

let properties ~k ~inputs results =
  let picked = List.map (fun (_, v, _) -> v) results in
  let committed = List.exists (fun (_, _, c) -> c) results in
  let distinct_picked = List.sort_uniq Int.compare picked in
  let validity =
    List.for_all (fun v -> Array.exists (fun i -> i = v) inputs) picked
  in
  let c_agreement =
    (not committed) || List.length distinct_picked <= k
  in
  let distinct_inputs =
    Array.to_list inputs |> List.sort_uniq Int.compare |> List.length
  in
  let convergence =
    distinct_inputs > k || List.for_all (fun (_, _, c) -> c) results
  in
  (validity, c_agreement, convergence)

let test_convergence_when_few_inputs () =
  (* 4 processes, 2 distinct inputs, k = 2: everyone must commit. *)
  let inputs = [| 5; 5; 9; 9 |] in
  let results, run_result =
    run_converge ~policy:(Policy.round_robin ()) ~k:2 inputs
  in
  checkb "quiescent" true (run_result.outcome = Scheduler.Quiescent);
  checki "all four finished" 4 (List.length results);
  List.iter (fun (_, _, c) -> checkb "committed" true c) results;
  let v, a, c = properties ~k:2 ~inputs results in
  checkb "validity" true v;
  checkb "c-agreement" true a;
  checkb "convergence" true c

let test_single_input_always_commits () =
  let inputs = [| 3; 3; 3 |] in
  let results, _ = run_converge ~policy:(Policy.round_robin ()) ~k:1 inputs in
  List.iter
    (fun (_, v, c) ->
      checki "picked the input" 3 v;
      checkb "committed" true c)
    results

let test_zero_converge_is_identity () =
  let inst = Converge.create ~name:"z" ~k:0 ~size:2 ~compare:Int.compare in
  let out = ref (0, true) in
  let body () = out := Converge.run inst ~me:0 42 in
  let result =
    Run.exec
      ~pattern:(Failure_pattern.no_failures ~n_plus_1:1)
      ~policy:(Policy.round_robin ())
      ~procs:(fun _ -> [ body ])
      ()
  in
  checki "no steps for 0-converge" 0 result.steps;
  checkb "returns (v, false)" true (!out = (42, false))

let test_solo_runner_commits () =
  (* A process running alone sees only its own value: |V1| = 1 <= k. *)
  let inputs = [| 7; 8; 9 |] in
  let inst = Converge.create ~name:"s" ~k:1 ~size:3 ~compare:Int.compare in
  let out = ref (0, false) in
  let body pid () =
    if pid = 2 then out := Converge.run inst ~me:2 inputs.(2)
  in
  let _ =
    Run.exec
      ~pattern:(Failure_pattern.no_failures ~n_plus_1:3)
      ~policy:(Policy.solo 2)
      ~procs:(fun pid -> [ body pid ])
      ()
  in
  checkb "solo commits own value" true (!out = (9, true))

let test_wait_freedom_with_crashes () =
  (* Crashing processes mid-protocol must not block survivors. *)
  for seed = 1 to 30 do
    let rng = Rng.create seed in
    let n = 4 in
    let pattern =
      Failure_pattern.random rng ~n_plus_1:n ~max_faulty:(n - 1) ~latest:40
    in
    let inputs = Array.init n (fun i -> 10 + i) in
    let results, run_result =
      run_converge ~pattern ~policy:(Policy.random rng) ~k:2 inputs
    in
    checkb "run finished (no livelock)" true
      (run_result.outcome = Scheduler.Quiescent);
    let finished = List.map (fun (p, _, _) -> p) results in
    Pid.Set.iter
      (fun p ->
        checkb "every correct process picked" true (List.mem p finished))
      (Failure_pattern.correct pattern);
    let v, a, _ = properties ~k:2 ~inputs results in
    checkb "validity" true v;
    checkb "c-agreement" true a
  done

let test_c_agreement_exhaustive_small () =
  (* 3 processes, all-distinct inputs, k = 2, every interleaving from a
     seeded random scheduler: whenever someone commits, at most 2 values
     are picked. *)
  for seed = 1 to 200 do
    let rng = Rng.create seed in
    let inputs = [| 1; 2; 3 |] in
    let results, _ = run_converge ~policy:(Policy.random rng) ~k:2 inputs in
    let v, a, c = properties ~k:2 ~inputs results in
    checkb "validity" true v;
    checkb "c-agreement" true a;
    checkb "convergence (vacuous)" true c
  done

let test_commit_adopt_alias () =
  let ca = Commit_adopt.create ~name:"ca" ~size:2 ~compare:Int.compare in
  let outs = Array.make 2 (0, false) in
  let body pid () = outs.(pid) <- Commit_adopt.run ca ~me:pid 5 in
  let _ =
    Run.exec
      ~pattern:(Failure_pattern.no_failures ~n_plus_1:2)
      ~policy:(Policy.round_robin ())
      ~procs:(fun pid -> [ body pid ])
      ()
  in
  Array.iter
    (fun (v, c) ->
      checki "picked 5" 5 v;
      checkb "committed" true c)
    outs

let test_commit_adopt_agreement_on_conflict () =
  (* Different inputs: if anyone commits v, everyone picks v. *)
  for seed = 1 to 100 do
    let rng = Rng.create (seed * 13) in
    let ca = Commit_adopt.create ~name:"ca2" ~size:3 ~compare:Int.compare in
    let outs = ref [] in
    let body pid () = outs := Commit_adopt.run ca ~me:pid (pid * 100) :: !outs in
    let _ =
      Run.exec
        ~pattern:(Failure_pattern.no_failures ~n_plus_1:3)
        ~policy:(Policy.random rng)
        ~procs:(fun pid -> [ body pid ])
        ()
    in
    match List.filter (fun (_, c) -> c) !outs with
    | [] -> ()
    | (v, _) :: _ ->
        List.iter (fun (w, _) -> checki "all picks equal commit" v w) !outs
  done

let test_arena_shares_instances () =
  let arena = Arena.create ~name:"ar" ~size:2 ~compare:Int.compare in
  let a = Arena.instance arena ~k:1 ~tag:"r1" in
  let b = Arena.instance arena ~k:1 ~tag:"r1" in
  let c = Arena.instance arena ~k:1 ~tag:"r2" in
  checkb "same (k, tag) shares" true (a == b);
  checkb "different tag distinct" true (not (a == c));
  (* k is part of the instance identity, as in the paper's
     (|U|-1)-converge[r][k] naming: same tag, different k, different
     object. *)
  let d = Arena.instance arena ~k:2 ~tag:"r1" in
  checkb "different k distinct" true (not (a == d));
  Alcotest.check Alcotest.int "k recorded" 2 (Converge.k_of d)

let qcheck_cases =
  let open QCheck in
  let gen_case =
    (* (seed, n, k, input variety) *)
    quad small_nat small_nat small_nat small_nat
  in
  [
    Test.make ~count:150
      ~name:"k-converge: validity + c-agreement + convergence (random runs)"
      gen_case
      (fun (seed, n_raw, k_raw, variety_raw) ->
        let n = 2 + (n_raw mod 4) in
        let k = 1 + (k_raw mod n) in
        let variety = 1 + (variety_raw mod n) in
        let rng = Rng.create ((seed * 31) + 1) in
        let inputs = Array.init n (fun i -> i mod variety) in
        let results, run_result =
          run_converge ~policy:(Policy.random rng) ~k inputs
        in
        let v, a, c = properties ~k ~inputs results in
        run_result.outcome = Scheduler.Quiescent
        && List.length results = n
        && v && a && c);
    Test.make ~count:100
      ~name:"k-converge with crashes: safety for survivors" gen_case
      (fun (seed, n_raw, k_raw, _) ->
        let n = 2 + (n_raw mod 4) in
        let k = 1 + (k_raw mod n) in
        let rng = Rng.create ((seed * 37) + 5) in
        let pattern =
          Failure_pattern.random rng ~n_plus_1:n ~max_faulty:(n - 1)
            ~latest:50
        in
        let inputs = Array.init n (fun i -> i) in
        let results, run_result =
          run_converge ~pattern ~policy:(Policy.random rng) ~k inputs
        in
        let v, a, _ = properties ~k ~inputs results in
        run_result.outcome = Scheduler.Quiescent && v && a);
  ]

let suite =
  [
    Alcotest.test_case "convergence when inputs <= k" `Quick
      test_convergence_when_few_inputs;
    Alcotest.test_case "single input commits" `Quick
      test_single_input_always_commits;
    Alcotest.test_case "0-converge identity" `Quick test_zero_converge_is_identity;
    Alcotest.test_case "solo runner commits" `Quick test_solo_runner_commits;
    Alcotest.test_case "wait-freedom with crashes" `Quick
      test_wait_freedom_with_crashes;
    Alcotest.test_case "c-agreement (3 procs, distinct)" `Quick
      test_c_agreement_exhaustive_small;
    Alcotest.test_case "commit-adopt same input" `Quick test_commit_adopt_alias;
    Alcotest.test_case "commit-adopt conflict" `Quick
      test_commit_adopt_agreement_on_conflict;
    Alcotest.test_case "arena sharing" `Quick test_arena_shares_instances;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_cases
