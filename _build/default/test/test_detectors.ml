(* Tests for the failure-detector histories: each detector's generated
   history satisfies its own paper specification, checked by the module's
   [check] and by direct probing. *)

open Kernel
open Detectors

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let ok = function
  | Ok () -> true
  | Error msg ->
      Printf.eprintf "spec violation: %s\n" msg;
      false

let pattern_of_seed seed ~n_plus_1 ~max_faulty =
  let rng = Rng.create seed in
  Failure_pattern.random rng ~n_plus_1 ~max_faulty ~latest:60

(* -- Υ -------------------------------------------------------------------- *)

let test_upsilon_spec_random_patterns () =
  for seed = 1 to 50 do
    let rng = Rng.create (seed * 7) in
    let pattern = pattern_of_seed seed ~n_plus_1:4 ~max_faulty:3 in
    let d = Upsilon.make ~rng ~pattern ~stab_time:100 () in
    checkb "upsilon spec" true
      (ok (Upsilon.check d ~pattern ~stab_by:100 ~horizon:300))
  done

let test_upsilon_stable_set_never_correct_set () =
  for seed = 1 to 30 do
    let rng = Rng.create seed in
    let pattern = pattern_of_seed (seed + 100) ~n_plus_1:3 ~max_faulty:2 in
    let d = Upsilon.make ~rng ~pattern ~stab_time:0 () in
    let u = Detector.sample d 0 0 in
    checkb "stable != correct" false
      (Pid.Set.equal u (Failure_pattern.correct pattern))
  done

let test_upsilon_rejects_correct_set_as_stable () =
  let pattern = Failure_pattern.make ~n_plus_1:3 ~crashes:[ (0, 5) ] in
  let rng = Rng.create 1 in
  let correct = Failure_pattern.correct pattern in
  Alcotest.check_raises "stable=correct rejected"
    (Invalid_argument "Upsilon_f.make: stable set equals correct set")
    (fun () ->
      ignore (Upsilon.make ~rng ~pattern ~stable_set:correct ()))

let test_upsilon_paper_example () =
  (* §4's example: 3 processes, p1 faulty; any subset but {p2, p3} is a
     legal stable output. *)
  let pattern = Failure_pattern.make ~n_plus_1:3 ~crashes:[ (0, 10) ] in
  let legal = Upsilon.legal_stable_sets ~pattern in
  checki "6 legal sets" 6 (List.length legal);
  checkb "excludes {p2,p3}" false
    (List.exists (fun s -> Pid.Set.equal s (Pid.Set.of_indices [ 1; 2 ])) legal);
  checkb "includes {p1}" true
    (List.exists (fun s -> Pid.Set.equal s (Pid.Set.of_indices [ 0 ])) legal);
  checkb "includes all of Pi" true
    (List.exists
       (fun s -> Pid.Set.equal s (Pid.Set.of_indices [ 0; 1; 2 ]))
       legal)

let test_upsilon_chaos_respects_range () =
  let pattern = Failure_pattern.no_failures ~n_plus_1:4 in
  let rng = Rng.create 9 in
  let d = Upsilon.make ~rng ~pattern ~stab_time:200 () in
  for t = 0 to 199 do
    List.iter
      (fun p ->
        checkb "non-empty during chaos" false
          (Pid.Set.is_empty (Detector.sample d p t)))
      (Pid.all ~n_plus_1:4)
  done

(* -- Υᶠ ------------------------------------------------------------------- *)

let test_upsilon_f_range_size () =
  let pattern = Failure_pattern.make ~n_plus_1:5 ~crashes:[ (0, 5) ] in
  let rng = Rng.create 2 in
  let f = 2 in
  let d = Upsilon_f.make ~rng ~pattern ~f ~stab_time:50 () in
  for t = 0 to 150 do
    List.iter
      (fun p ->
        checkb "size >= n+1-f" true
          (Pid.Set.cardinal (Detector.sample d p t) >= 5 - f))
      (Pid.all ~n_plus_1:5)
  done;
  checkb "spec" true (ok (Upsilon_f.check d ~pattern ~f ~stab_by:50 ~horizon:200))

let test_upsilon_f_rejects_pattern_outside_env () =
  let pattern = Failure_pattern.make ~n_plus_1:4 ~crashes:[ (0, 1); (1, 2) ] in
  let rng = Rng.create 3 in
  Alcotest.check_raises "pattern outside E_1"
    (Invalid_argument "Upsilon_f.make: pattern outside E_f") (fun () ->
      ignore (Upsilon_f.make ~rng ~pattern ~f:1 ()))

let test_upsilon_equals_upsilon_n () =
  (* Υ = Υⁿ: for f = n the legal stable sets coincide. *)
  let pattern = Failure_pattern.make ~n_plus_1:4 ~crashes:[ (2, 8) ] in
  let a = Upsilon.legal_stable_sets ~pattern in
  let b = Upsilon_f.legal_stable_sets ~pattern ~f:3 in
  checki "same count" (List.length a) (List.length b)

(* -- Ω / Ωₖ ---------------------------------------------------------------- *)

let test_omega_leader_correct () =
  for seed = 1 to 40 do
    let rng = Rng.create seed in
    let pattern = pattern_of_seed (seed + 7) ~n_plus_1:4 ~max_faulty:3 in
    let d = Omega.make ~rng ~pattern ~stab_time:80 () in
    checkb "omega spec" true
      (ok (Omega.check d ~pattern ~stab_by:80 ~horizon:200))
  done

let test_omega_rejects_faulty_leader () =
  let pattern = Failure_pattern.make ~n_plus_1:3 ~crashes:[ (0, 5) ] in
  let rng = Rng.create 4 in
  Alcotest.check_raises "faulty leader rejected"
    (Invalid_argument "Omega.make: leader must be correct") (fun () ->
      ignore (Omega.make ~rng ~pattern ~leader:0 ()))

let test_omega_k_spec () =
  for seed = 1 to 40 do
    let rng = Rng.create (seed * 3) in
    let pattern = pattern_of_seed (seed + 21) ~n_plus_1:5 ~max_faulty:4 in
    let k = 1 + (seed mod 4) in
    let d = Omega_k.make ~rng ~pattern ~k ~stab_time:60 () in
    checkb "omega_k spec" true
      (ok (Omega_k.check d ~pattern ~k ~stab_by:60 ~horizon:150))
  done

let test_omega_1_is_omega () =
  let pattern = Failure_pattern.make ~n_plus_1:3 ~crashes:[ (1, 4) ] in
  let rng = Rng.create 5 in
  let d = Omega_k.make ~rng ~pattern ~k:1 ~stab_time:0 () in
  let s = Detector.sample d 0 10 in
  checki "singleton" 1 (Pid.Set.cardinal s);
  checkb "member is correct" true
    (Failure_pattern.is_correct pattern (Pid.Set.choose s))

(* -- P / ◇P ----------------------------------------------------------------- *)

let test_perfect_tracks_crashes_exactly () =
  let pattern = Failure_pattern.make ~n_plus_1:4 ~crashes:[ (1, 10); (3, 20) ] in
  let d = Perfect.make ~pattern in
  checkb "spec" true (ok (Perfect.check d ~pattern ~horizon:50));
  checki "nobody at t=5" 0 (Pid.Set.cardinal (Detector.sample d 0 5));
  checki "one at t=15" 1 (Pid.Set.cardinal (Detector.sample d 0 15));
  checki "two at t=25" 2 (Pid.Set.cardinal (Detector.sample d 0 25))

let test_ev_perfect_eventually_exact () =
  for seed = 1 to 30 do
    let rng = Rng.create seed in
    let pattern = pattern_of_seed (seed + 50) ~n_plus_1:4 ~max_faulty:3 in
    let d = Ev_perfect.make ~rng ~pattern ~stab_time:70 () in
    checkb "ev_perfect spec" true
      (ok (Ev_perfect.check d ~pattern ~stab_by:70 ~horizon:200))
  done

let test_ev_perfect_is_stable_detector () =
  (* After chaos and all crashes, the value is constant = faulty(F):
     ◇P belongs to the paper's stable class (§6.2). *)
  let pattern = Failure_pattern.make ~n_plus_1:3 ~crashes:[ (2, 30) ] in
  let rng = Rng.create 8 in
  let d = Ev_perfect.make ~rng ~pattern ~stab_time:10 () in
  let from = Ev_perfect.stable_from ~pattern ~stab_time:10 in
  match Detector.stable_value d pattern ~from ~until:(from + 100) with
  | Some s ->
      checkb "stable value = faulty set" true
        (Pid.Set.equal s (Failure_pattern.faulty pattern))
  | None -> Alcotest.fail "ev_perfect did not stabilize"

(* -- anti-Ω ------------------------------------------------------------------ *)

let test_anti_omega_spares_a_correct_process () =
  for seed = 1 to 30 do
    let rng = Rng.create seed in
    let pattern = pattern_of_seed (seed + 11) ~n_plus_1:4 ~max_faulty:3 in
    let d = Anti_omega.make ~rng ~pattern ~stab_time:50 () in
    checkb "anti-omega spec" true
      (ok (Anti_omega.check d ~pattern ~stab_by:50 ~horizon:300))
  done

let test_anti_omega_is_unstable () =
  (* In a system with >= 3 processes the post-stabilization output keeps
     changing: anti-Ω genuinely sits outside the stable class. *)
  let pattern = Failure_pattern.no_failures ~n_plus_1:3 in
  let rng = Rng.create 6 in
  let d = Anti_omega.make ~rng ~pattern ~stab_time:0 () in
  checkb "no stable value" true
    (Detector.stable_value d pattern ~from:0 ~until:100 = None)

(* -- dummy / vitality ---------------------------------------------------------- *)

let test_dummy_is_constant () =
  let d =
    Dummy.make ~value:"x" ~pp:Format.pp_print_string ~equal:String.equal ()
  in
  let pattern = Failure_pattern.no_failures ~n_plus_1:2 in
  match Detector.stable_value d pattern ~from:0 ~until:50 with
  | Some "x" -> ()
  | Some _ | None -> Alcotest.fail "dummy not constant"

let test_vitality_verdict () =
  let pattern = Failure_pattern.make ~n_plus_1:3 ~crashes:[ (0, 15) ] in
  let rng = Rng.create 10 in
  let alive = Vitality.make ~rng ~pattern ~watched:1 ~stab_time:40 () in
  let dead = Vitality.make ~rng ~pattern ~watched:0 ~stab_time:40 () in
  checkb "watched-correct spec" true
    (ok (Vitality.check alive ~pattern ~watched:1 ~stab_by:40 ~horizon:120));
  checkb "watched-faulty spec" true
    (ok (Vitality.check dead ~pattern ~watched:0 ~stab_by:40 ~horizon:120));
  checkb "verdicts differ" true
    (Detector.sample alive 1 50 <> Detector.sample dead 1 50)

(* -- querying from inside a run ------------------------------------------------ *)

let test_query_consumes_step_and_reads_history () =
  let pattern = Failure_pattern.no_failures ~n_plus_1:2 in
  let rng = Rng.create 13 in
  let d = Omega.make ~rng ~pattern ~leader:1 ~stab_time:0 () in
  let src = Detector.source d in
  let seen = ref [] in
  let body () =
    for _ = 1 to 3 do
      seen := Sim.query src :: !seen
    done
  in
  let result =
    Run.exec ~pattern
      ~policy:(Policy.round_robin ())
      ~procs:(fun _ -> [ body ])
      ()
  in
  checki "six steps" 6 result.steps;
  checkb "all queries saw the stable leader" true
    (List.for_all (fun l -> l = 1) !seen);
  checki "queries traced" 6
    (List.length (Trace.queries result.trace ~detector:"omega"))

let qcheck_cases =
  let open QCheck in
  [
    Test.make ~count:60 ~name:"upsilon_f spec holds for random (n, f, seed)"
      small_nat
      (fun seed ->
        let n_plus_1 = 3 + (seed mod 4) in
        let f = 1 + (seed mod (n_plus_1 - 1)) in
        let rng = Rng.create (seed + 17) in
        let pattern =
          Failure_pattern.random rng ~n_plus_1 ~max_faulty:f ~latest:40
        in
        let d = Upsilon_f.make ~rng ~pattern ~f ~stab_time:60 () in
        ok (Upsilon_f.check d ~pattern ~f ~stab_by:60 ~horizon:160));
    Test.make ~count:60 ~name:"histories are pure functions of (pid, time)"
      small_nat
      (fun seed ->
        let rng = Rng.create seed in
        let pattern =
          Failure_pattern.random rng ~n_plus_1:4 ~max_faulty:2 ~latest:30
        in
        let d = Upsilon.make ~rng ~pattern () in
        List.for_all
          (fun p ->
            List.for_all
              (fun t ->
                Pid.Set.equal (Detector.sample d p t) (Detector.sample d p t))
              [ 0; 3; 17; 64; 200 ])
          (Pid.all ~n_plus_1:4));
  ]

let suite =
  [
    Alcotest.test_case "upsilon spec (random patterns)" `Quick
      test_upsilon_spec_random_patterns;
    Alcotest.test_case "upsilon avoids correct set" `Quick
      test_upsilon_stable_set_never_correct_set;
    Alcotest.test_case "upsilon rejects correct set" `Quick
      test_upsilon_rejects_correct_set_as_stable;
    Alcotest.test_case "upsilon paper example (3 procs)" `Quick
      test_upsilon_paper_example;
    Alcotest.test_case "upsilon chaos in range" `Quick
      test_upsilon_chaos_respects_range;
    Alcotest.test_case "upsilon_f range size" `Quick test_upsilon_f_range_size;
    Alcotest.test_case "upsilon_f env check" `Quick
      test_upsilon_f_rejects_pattern_outside_env;
    Alcotest.test_case "upsilon = upsilon^n" `Quick test_upsilon_equals_upsilon_n;
    Alcotest.test_case "omega leader correct" `Quick test_omega_leader_correct;
    Alcotest.test_case "omega rejects faulty leader" `Quick
      test_omega_rejects_faulty_leader;
    Alcotest.test_case "omega_k spec" `Quick test_omega_k_spec;
    Alcotest.test_case "omega_1 = omega" `Quick test_omega_1_is_omega;
    Alcotest.test_case "perfect tracks crashes" `Quick
      test_perfect_tracks_crashes_exactly;
    Alcotest.test_case "ev_perfect eventually exact" `Quick
      test_ev_perfect_eventually_exact;
    Alcotest.test_case "ev_perfect is stable" `Quick
      test_ev_perfect_is_stable_detector;
    Alcotest.test_case "anti-omega spares correct" `Quick
      test_anti_omega_spares_a_correct_process;
    Alcotest.test_case "anti-omega unstable" `Quick test_anti_omega_is_unstable;
    Alcotest.test_case "dummy constant" `Quick test_dummy_is_constant;
    Alcotest.test_case "vitality verdict" `Quick test_vitality_verdict;
    Alcotest.test_case "query = one step" `Quick
      test_query_consumes_step_and_reads_history;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_cases
