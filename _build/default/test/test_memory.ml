(* Tests for the shared-memory substrate: registers, the Afek et al.
   snapshot, native snapshot, consensus objects. *)

open Kernel
open Memory

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let failure_free n = Failure_pattern.no_failures ~n_plus_1:n

let run_procs ?(horizon = 100_000) ~n ~policy procs =
  Run.exec ~pattern:(failure_free n) ~policy ~horizon
    ~procs:(fun pid -> [ (fun () -> procs pid) ])
    ()

(* -- Registers ----------------------------------------------------------- *)

let test_register_read_write () =
  let r = Register.create ~name:"r" 0 in
  let seen = ref (-1) in
  let writer () = Register.write r 42 in
  let reader () =
    (* spin until the write is visible *)
    let rec loop () =
      let v = Register.read r in
      if v = 42 then seen := v else loop ()
    in
    loop ()
  in
  let result =
    Run.exec ~pattern:(failure_free 2)
      ~policy:(Policy.round_robin ())
      ~procs:(fun pid -> [ (if pid = 0 then writer else reader) ])
      ()
  in
  checkb "quiescent" true (result.outcome = Scheduler.Quiescent);
  checki "read observed write" 42 !seen

let test_register_each_op_is_one_step () =
  let r = Register.create ~name:"r" 0 in
  let body () =
    Register.write r 1;
    ignore (Register.read r);
    Register.write r 2
  in
  let result = run_procs ~n:1 ~policy:(Policy.round_robin ()) (fun _ -> body ()) in
  checki "three steps" 3 result.steps

let test_register_collect_not_atomic () =
  (* A collect interleaved with writes may see a mix of old and new —
     this is precisely why snapshots exist. We only check it takes
     [size] steps and sees each cell individually. *)
  let regs = Register.array ~name:"a" ~size:4 ~init:(fun i -> i) in
  let observed = ref [||] in
  let body () = observed := Register.collect regs in
  let result = run_procs ~n:1 ~policy:(Policy.round_robin ()) (fun _ -> body ()) in
  checki "four steps" 4 result.steps;
  Alcotest.check (Alcotest.array Alcotest.int) "initial values" [| 0; 1; 2; 3 |] !observed

let test_counter_monotone () =
  let c = Register.Counter.create ~name:"ts" in
  let reads = ref [] in
  let writer () =
    for _ = 1 to 5 do
      Register.Counter.incr c
    done
  in
  let reader () =
    for _ = 1 to 10 do
      reads := Register.Counter.get c :: !reads
    done
  in
  let _result =
    Run.exec ~pattern:(failure_free 2)
      ~policy:(Policy.round_robin ())
      ~procs:(fun pid -> [ (if pid = 0 then writer else reader) ])
      ()
  in
  let readings = List.rev !reads in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  checkb "counter readings monotone" true (monotone readings);
  checki "final value" 5 (Register.Counter.peek c)

(* -- Snapshot ------------------------------------------------------------ *)

let test_snapshot_sees_own_update () =
  let snap = Snapshot.create ~name:"s" ~size:3 ~init:(fun _ -> None) in
  let ok = ref false in
  let body () =
    Snapshot.update snap ~me:1 (Some 7);
    let view = Snapshot.scan snap in
    ok := view.(1) = Some 7
  in
  let pattern = failure_free 3 in
  let result =
    Run.exec ~pattern ~policy:(Policy.solo 1)
      ~procs:(fun pid -> [ (fun () -> if pid = 1 then body ()) ])
      ()
  in
  ignore result;
  checkb "own update visible" true !ok

let test_snapshot_containment_under_contention () =
  (* Many processes update and scan concurrently under a random scheduler;
     all version vectors collected must be pairwise containment-related —
     the linchpin of the paper's Theorem 6 proof. *)
  let n = 4 in
  let snap = Snapshot.create ~name:"s" ~size:n ~init:(fun _ -> None) in
  let views = ref [] in
  let body pid () =
    for round = 1 to 5 do
      Snapshot.update snap ~me:pid (Some (round * 10 + pid));
      let v = Snapshot.scan_versioned snap in
      views := Array.map snd v :: !views
    done
  in
  let rng = Rng.create 12345 in
  let result =
    Run.exec ~pattern:(failure_free n) ~policy:(Policy.random rng)
      ~horizon:200_000
      ~procs:(fun pid -> [ body pid ])
      ()
  in
  checkb "quiescent" true (result.outcome = Scheduler.Quiescent);
  let le a b = Array.for_all2 (fun x y -> x <= y) a b in
  let rec pairs = function
    | [] -> true
    | v :: rest ->
        List.for_all (fun w -> le v w || le w v) rest && pairs rest
  in
  checkb "all scans containment-related" true (pairs !views)

let test_snapshot_wait_free_under_adversary () =
  (* A scanner races two writers that never stop; the embedded-view
     borrowing must let the scan finish anyway. The adversary alternates
     writers between every scanner step. *)
  let n = 3 in
  let snap = Snapshot.create ~name:"s" ~size:n ~init:(fun _ -> None) in
  let scanned = ref false in
  let writer pid () =
    while true do
      Snapshot.update snap ~me:pid (Some pid)
    done
  in
  let scanner () =
    ignore (Snapshot.scan snap);
    scanned := true
  in
  (* interleave: writer0, writer1, scanner, writer0, writer1, scanner... *)
  let counter = ref 0 in
  let policy =
    Policy.custom (fun ~now:_ ~enabled ->
        incr counter;
        let want = [| 0; 1; 2 |].(!counter mod 3) in
        if List.mem want enabled then Some want
        else match enabled with [] -> None | p :: _ -> Some p)
  in
  let _result =
    Run.exec ~pattern:(failure_free n) ~policy ~horizon:50_000
      ~procs:(fun pid -> [ (if pid = 2 then scanner else writer pid) ])
      ()
  in
  checkb "scan completed despite perpetual writers" true !scanned

let test_snapshot_versions_count_updates () =
  let snap = Snapshot.create ~name:"s" ~size:2 ~init:(fun _ -> 0) in
  let final = ref [||] in
  let body () =
    Snapshot.update snap ~me:0 1;
    Snapshot.update snap ~me:0 2;
    Snapshot.update snap ~me:0 3;
    final := Array.map snd (Snapshot.scan_versioned snap)
  in
  let _ = run_procs ~n:2 ~policy:(Policy.solo 0) (fun pid -> if pid = 0 then body ()) in
  Alcotest.check (Alcotest.array Alcotest.int) "versions" [| 3; 0 |] !final

(* -- Native snapshot ------------------------------------------------------ *)

let test_native_snapshot_single_step () =
  let snap = Native_snapshot.create ~name:"ns" ~size:3 ~init:(fun _ -> 0) in
  let body () =
    Native_snapshot.update snap ~me:0 5;
    ignore (Native_snapshot.scan snap)
  in
  let result = run_procs ~n:1 ~policy:(Policy.round_robin ()) (fun _ -> body ()) in
  checki "two steps total" 2 result.steps

(* -- Consensus objects ---------------------------------------------------- *)

let test_consensus_first_wins () =
  let obj = Consensus_obj.create ~name:"c" ~ports:None in
  let results = Array.make 3 (-1) in
  let body pid () = results.(pid) <- Consensus_obj.propose obj (100 + pid) in
  let _ =
    Run.exec ~pattern:(failure_free 3)
      ~policy:(Policy.round_robin ())
      ~procs:(fun pid -> [ body pid ])
      ()
  in
  checki "all agree" results.(0) results.(1);
  checki "all agree" results.(1) results.(2);
  checkb "decided a proposal" true (results.(0) >= 100 && results.(0) <= 102)

let test_consensus_port_limit () =
  let obj = Consensus_obj.create ~name:"c2" ~ports:(Some 2) in
  let blown = ref false in
  let body pid () =
    try ignore (Consensus_obj.propose obj pid)
    with Consensus_obj.Port_exhausted _ -> blown := true
  in
  let _ =
    Run.exec ~pattern:(failure_free 3)
      ~policy:(Policy.round_robin ())
      ~procs:(fun pid -> [ body pid ])
      ()
  in
  checkb "third process rejected" true !blown;
  checki "two accessors" 2 (Pid.Set.cardinal (Consensus_obj.accessors obj))

let qcheck_cases =
  let open QCheck in
  [
    Test.make ~count:40
      ~name:"snapshot containment holds for random schedules and sizes"
      small_nat
      (fun seed ->
        let rng = Rng.create (seed + 1) in
        let n = 2 + (seed mod 4) in
        let snap = Snapshot.create ~name:"s" ~size:n ~init:(fun _ -> None) in
        let views = ref [] in
        let body pid () =
          for round = 1 to 3 do
            Snapshot.update snap ~me:pid (Some round);
            views := Array.map snd (Snapshot.scan_versioned snap) :: !views
          done
        in
        let result =
          Run.exec
            ~pattern:(Failure_pattern.no_failures ~n_plus_1:n)
            ~policy:(Policy.random rng) ~horizon:100_000
            ~procs:(fun pid -> [ body pid ])
            ()
        in
        let le a b = Array.for_all2 (fun x y -> x <= y) a b in
        let rec pairs = function
          | [] -> true
          | v :: rest ->
              List.for_all (fun w -> le v w || le w v) rest && pairs rest
        in
        result.outcome = Scheduler.Quiescent && pairs !views);
    Test.make ~count:40
      ~name:"snapshot scan reflects every completed update (crashes allowed)"
      small_nat
      (fun seed ->
        let rng = Rng.create (seed + 1000) in
        let n = 3 in
        let pattern =
          Failure_pattern.random rng ~n_plus_1:n ~max_faulty:1 ~latest:30
        in
        let snap = Snapshot.create ~name:"s" ~size:n ~init:(fun _ -> None) in
        let last_scan = ref [||] in
        let body pid () =
          Snapshot.update snap ~me:pid (Some pid);
          last_scan := Snapshot.scan snap
        in
        let result =
          Run.exec ~pattern ~policy:(Policy.random rng) ~horizon:100_000
            ~procs:(fun pid -> [ body pid ])
            ()
        in
        ignore result;
        (* whoever scanned last must at least see its own value *)
        Array.length !last_scan = 0
        || Array.exists (fun v -> v <> None) !last_scan);
  ]

let suite =
  [
    Alcotest.test_case "register read/write" `Quick test_register_read_write;
    Alcotest.test_case "register ops are steps" `Quick
      test_register_each_op_is_one_step;
    Alcotest.test_case "collect is not atomic" `Quick
      test_register_collect_not_atomic;
    Alcotest.test_case "counter monotone" `Quick test_counter_monotone;
    Alcotest.test_case "snapshot sees own update" `Quick
      test_snapshot_sees_own_update;
    Alcotest.test_case "snapshot containment" `Quick
      test_snapshot_containment_under_contention;
    Alcotest.test_case "snapshot wait-free vs adversary" `Quick
      test_snapshot_wait_free_under_adversary;
    Alcotest.test_case "snapshot versions" `Quick
      test_snapshot_versions_count_updates;
    Alcotest.test_case "native snapshot single step" `Quick
      test_native_snapshot_single_step;
    Alcotest.test_case "consensus first wins" `Quick test_consensus_first_wins;
    Alcotest.test_case "consensus port limit" `Quick test_consensus_port_limit;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_cases
