(* Failure-injection campaigns: sweep the crash instant across the whole
   critical window so crashes land inside every protocol phase
   (mid-converge, mid-snapshot, before/after publishing), plus
   whole-trace consistency checks (run-condition 2) and cross-run
   determinism of full protocol stacks. *)

open Kernel
open Detectors
open Agreement

let checkb = Alcotest.check Alcotest.bool

(* -- crash-point sweeps -------------------------------------------------- *)

let test_fig1_crash_point_sweep () =
  (* Crash p1 at every time in [0, 80]: whatever phase the crash lands
     in, the survivors must still satisfy the spec. *)
  let n_plus_1 = 3 in
  for crash_at = 0 to 80 do
    let pattern = Failure_pattern.make ~n_plus_1 ~crashes:[ (0, crash_at) ] in
    let rng = Rng.create 1234 in
    let upsilon = Upsilon.make ~rng ~pattern ~stab_time:40 () in
    let proto =
      Upsilon_sa.create ~name:"cs" ~n_plus_1
        ~upsilon:(Detector.source upsilon) ()
    in
    let _ =
      Run.exec ~pattern
        ~policy:(Policy.random (Rng.create 4321))
        ~horizon:1_000_000
        ~procs:(fun pid ->
          [ Upsilon_sa.proposer proto ~me:pid ~input:(100 + pid) ])
        ()
    in
    let verdict =
      Sa_spec.check ~k:(n_plus_1 - 1) ~pattern
        ~proposals:(List.map (fun p -> (p, 100 + p)) (Pid.all ~n_plus_1))
        ~decisions:(Upsilon_sa.decisions proto)
        ()
    in
    if not (Sa_spec.all_ok verdict) then
      Alcotest.failf "crash at %d: %a" crash_at Sa_spec.pp verdict
  done

let test_fig2_crash_point_sweep () =
  (* Same sweep for Fig 2 in the gladiator-gated configuration, so the
     crash can land inside the A[r][k] snapshot machinery. *)
  let n_plus_1 = 3 in
  let f = 2 in
  for crash_at = 0 to 60 do
    let pattern = Failure_pattern.make ~n_plus_1 ~crashes:[ (2, crash_at) ] in
    let rng = Rng.create 99 in
    let upsilon_f =
      Upsilon_f.make ~rng ~pattern ~f ~stable_set:(Pid.Set.full ~n_plus_1)
        ~stab_time:0 ()
    in
    let proto =
      Upsilon_f_sa.create ~name:"cs2" ~n_plus_1 ~f
        ~upsilon_f:(Detector.source upsilon_f) ()
    in
    let _ =
      Run.exec ~pattern
        ~policy:(Policy.round_robin ())
        ~horizon:1_000_000
        ~procs:(fun pid ->
          [ Upsilon_f_sa.proposer proto ~me:pid ~input:(200 + pid) ])
        ()
    in
    let verdict =
      Sa_spec.check ~k:f ~pattern
        ~proposals:(List.map (fun p -> (p, 200 + p)) (Pid.all ~n_plus_1))
        ~decisions:(Upsilon_f_sa.decisions proto)
        ()
    in
    if not (Sa_spec.all_ok verdict) then
      Alcotest.failf "crash at %d: %a" crash_at Sa_spec.pp verdict
  done

let test_converge_crash_point_sweep () =
  (* Crash one of three converge participants at each instant of its
     execution; survivors must keep all properties. *)
  for crash_at = 0 to 50 do
    let n = 3 in
    let pattern = Failure_pattern.make ~n_plus_1:n ~crashes:[ (1, crash_at) ] in
    let inst = Converge.create ~name:"cv" ~k:2 ~size:n ~compare:Int.compare in
    let results = ref [] in
    let body pid () =
      let picked, committed = Converge.run inst ~me:pid (pid * 11) in
      results := (pid, picked, committed) :: !results
    in
    let run_result =
      Run.exec ~pattern
        ~policy:(Policy.round_robin ())
        ~horizon:100_000
        ~procs:(fun pid -> [ body pid ])
        ()
    in
    checkb "quiescent" true (run_result.outcome = Scheduler.Quiescent);
    let committed = List.exists (fun (_, _, c) -> c) !results in
    let picked =
      List.sort_uniq Int.compare (List.map (fun (_, v, _) -> v) !results)
    in
    checkb "validity" true
      (List.for_all (fun v -> v = 0 || v = 11 || v = 22) picked);
    checkb "c-agreement" true ((not committed) || List.length picked <= 2)
  done

let test_booster_crash_point_sweep () =
  let n_plus_1 = 3 in
  for crash_at = 0 to 60 do
    let pattern = Failure_pattern.make ~n_plus_1 ~crashes:[ (0, crash_at) ] in
    let rng = Rng.create 7 in
    let omega_n = Omega_k.make ~rng ~pattern ~k:(n_plus_1 - 1) ~stab_time:30 () in
    let proto =
      Booster_consensus.create ~name:"bcs" ~n_plus_1
        ~omega_n:(Detector.source omega_n)
    in
    let _ =
      Run.exec ~pattern
        ~policy:(Policy.random (Rng.create (crash_at + 1)))
        ~horizon:1_000_000
        ~procs:(fun pid ->
          [ Booster_consensus.proposer proto ~me:pid ~input:(300 + pid) ])
        ()
    in
    let verdict =
      Sa_spec.check ~k:1 ~pattern
        ~proposals:(List.map (fun p -> (p, 300 + p)) (Pid.all ~n_plus_1))
        ~decisions:(Booster_consensus.decisions proto)
        ()
    in
    if not (Sa_spec.all_ok verdict) then
      Alcotest.failf "crash at %d: %a" crash_at Sa_spec.pp verdict
  done

(* -- run-condition (2): query values match the history -------------------- *)

let test_query_values_match_history () =
  let n_plus_1 = 3 in
  let pattern = Failure_pattern.make ~n_plus_1 ~crashes:[ (1, 50) ] in
  let rng = Rng.create 11 in
  let upsilon = Upsilon.make ~rng ~pattern ~stab_time:30 () in
  let src = Detector.source upsilon in
  let proto =
    Upsilon_sa.create ~name:"q" ~n_plus_1 ~upsilon:src ()
  in
  let result =
    Run.exec ~pattern
      ~policy:(Policy.random (Rng.create 12))
      ~horizon:500_000
      ~procs:(fun pid ->
        [ Upsilon_sa.proposer proto ~me:pid ~input:(100 + pid) ])
      ()
  in
  let violations = Oracle.check_query_values src result.trace in
  if violations <> [] then
    Alcotest.failf "condition 2 violated: %a" Oracle.pp_violation
      (List.hd violations);
  (* sanity: the protocol really did query *)
  checkb "queries recorded" true
    (Trace.query_values result.trace ~detector:src.Sim.name <> [])

(* -- cross-run determinism of the full stack -------------------------------- *)

let full_stack_digest seed =
  let rng = Rng.create seed in
  let pattern =
    Failure_pattern.random rng ~n_plus_1:4 ~max_faulty:3 ~latest:100
  in
  let upsilon = Upsilon.make ~rng ~pattern () in
  let proto =
    Upsilon_sa.create ~name:"d" ~n_plus_1:4
      ~upsilon:(Detector.source upsilon) ()
  in
  let result =
    Run.exec ~pattern
      ~policy:(Policy.random (Rng.split rng))
      ~horizon:500_000
      ~procs:(fun pid ->
        [ Upsilon_sa.proposer proto ~me:pid ~input:(100 + pid) ])
      ()
  in
  Digest.string (Format.asprintf "%a" Trace.pp result.trace) |> Digest.to_hex

let test_full_stack_determinism () =
  for seed = 1 to 10 do
    Alcotest.check Alcotest.string "same digest"
      (full_stack_digest seed) (full_stack_digest seed)
  done;
  checkb "different seeds, different traces" true
    (full_stack_digest 1 <> full_stack_digest 2)

(* -- large-system soak ---------------------------------------------------- *)

let test_soak_large_system () =
  (* n+1 = 10 with 9 potential crashes: the protocols and substrates must
     scale beyond toy sizes. *)
  let n_plus_1 = 10 in
  let rng = Rng.create 77 in
  let pattern =
    Failure_pattern.random rng ~n_plus_1 ~max_faulty:(n_plus_1 - 1) ~latest:500
  in
  let upsilon = Upsilon.make ~rng ~pattern () in
  let proto =
    Upsilon_sa.create ~name:"soak" ~n_plus_1
      ~upsilon:(Detector.source upsilon) ()
  in
  let result =
    Run.exec ~pattern ~policy:(Policy.random rng) ~horizon:5_000_000
      ~procs:(fun pid ->
        [ Upsilon_sa.proposer proto ~me:pid ~input:(100 + pid) ])
      ()
  in
  ignore result;
  let verdict =
    Sa_spec.check ~k:(n_plus_1 - 1) ~pattern
      ~proposals:(List.map (fun p -> (p, 100 + p)) (Pid.all ~n_plus_1))
      ~decisions:(Upsilon_sa.decisions proto)
      ()
  in
  if not (Sa_spec.all_ok verdict) then
    Alcotest.failf "soak: %a" Sa_spec.pp verdict

let suite =
  [
    Alcotest.test_case "fig1 crash-point sweep" `Quick
      test_fig1_crash_point_sweep;
    Alcotest.test_case "fig2 crash-point sweep (gated)" `Quick
      test_fig2_crash_point_sweep;
    Alcotest.test_case "converge crash-point sweep" `Quick
      test_converge_crash_point_sweep;
    Alcotest.test_case "booster crash-point sweep" `Quick
      test_booster_crash_point_sweep;
    Alcotest.test_case "run-condition 2 (query values)" `Quick
      test_query_values_match_history;
    Alcotest.test_case "full-stack determinism" `Quick
      test_full_stack_determinism;
    Alcotest.test_case "soak: 10 processes, 9 faults" `Quick
      test_soak_large_system;
  ]
