(* Oracle validation: the checkers themselves must catch violations
   (negative tests), schedules must replay exactly, and the hand-derived
   phi maps must be empirically "non-samples": a detector over a pattern
   whose correct set equals phi(d).set can never stabilize on d. *)

open Kernel
open Detectors
open Agreement
open Reduction

let checkb = Alcotest.check Alcotest.bool

(* -- Sa_spec negative cases --------------------------------------------- *)

let base_pattern = Failure_pattern.make ~n_plus_1:3 ~crashes:[ (0, 10) ]
let proposals = [ (0, 10); (1, 20); (2, 30) ]

let test_sa_spec_catches_agreement_violation () =
  let verdict =
    Sa_spec.check ~k:1 ~pattern:base_pattern ~proposals
      ~decisions:[ (1, 20); (2, 30) ]
      ()
  in
  checkb "agreement flagged" false verdict.Sa_spec.agreement;
  checkb "not all ok" false (Sa_spec.all_ok verdict)

let test_sa_spec_catches_validity_violation () =
  let verdict =
    Sa_spec.check ~k:2 ~pattern:base_pattern ~proposals
      ~decisions:[ (1, 999); (2, 999) ]
      ()
  in
  checkb "validity flagged" false verdict.Sa_spec.validity

let test_sa_spec_catches_termination_violation () =
  let verdict =
    Sa_spec.check ~k:2 ~pattern:base_pattern ~proposals
      ~decisions:[ (1, 20) ] (* p3 is correct but silent *)
      ()
  in
  checkb "termination flagged" false verdict.Sa_spec.termination;
  checkb "p3 reported missing" true
    (Pid.Set.mem 2 verdict.Sa_spec.undecided_correct)

let test_sa_spec_ignores_faulty_nondeciders () =
  (* p1 crashed; its silence must not violate Termination. *)
  let verdict =
    Sa_spec.check ~k:2 ~pattern:base_pattern ~proposals
      ~decisions:[ (1, 20); (2, 20) ]
      ()
  in
  checkb "all ok" true (Sa_spec.all_ok verdict)

(* -- run-condition oracles: negative cases -------------------------------- *)

let test_oracle_catches_posthumous_step () =
  let pattern = Failure_pattern.make ~n_plus_1:2 ~crashes:[ (0, 5) ] in
  let forged =
    [
      Trace.Step { pid = 0; time = 7; kind = Sim.Nop; note = None };
    ]
  in
  let violations = Oracle.check_run_conditions pattern forged in
  checkb "condition 1 flagged" true
    (List.exists (fun v -> v.Oracle.condition = "run-condition-1") violations)

let test_oracle_catches_duplicate_times () =
  let pattern = Failure_pattern.no_failures ~n_plus_1:2 in
  let forged =
    [
      Trace.Step { pid = 0; time = 3; kind = Sim.Nop; note = None };
      Trace.Step { pid = 1; time = 3; kind = Sim.Nop; note = None };
    ]
  in
  let violations = Oracle.check_run_conditions pattern forged in
  checkb "condition 3 flagged" true
    (List.exists (fun v -> v.Oracle.condition = "run-condition-3") violations)

let test_oracle_catches_forged_query_value () =
  let pattern = Failure_pattern.no_failures ~n_plus_1:2 in
  let rng = Rng.create 5 in
  let omega = Omega.make ~rng ~pattern ~leader:1 ~stab_time:0 () in
  let src = Detector.source omega in
  let forged =
    [
      Trace.Step
        {
          pid = 0;
          time = 3;
          kind = Sim.Query { detector = src.Sim.name };
          note = Some "p1" (* history says p2 *);
        };
    ]
  in
  checkb "condition 2 flagged" true (Oracle.check_query_values src forged <> [])

(* -- schedule replay -------------------------------------------------------- *)

let test_schedule_replay_reproduces_trace () =
  let make_world () =
    let pattern = Failure_pattern.make ~n_plus_1:3 ~crashes:[ (2, 40) ] in
    let rng = Rng.create 21 in
    let upsilon = Upsilon.make ~rng ~pattern ~stab_time:25 () in
    let proto =
      Upsilon_sa.create ~name:"r" ~n_plus_1:3
        ~upsilon:(Detector.source upsilon) ()
    in
    (pattern, proto)
  in
  (* original run under a random policy *)
  let pattern, proto1 = make_world () in
  let original =
    Run.exec ~pattern
      ~policy:(Policy.random (Rng.create 22))
      ~horizon:200_000
      ~procs:(fun pid -> [ Upsilon_sa.proposer proto1 ~me:pid ~input:(pid + 1) ])
      ()
  in
  (* replay: same world, schedule scripted from the original trace *)
  let pattern2, proto2 = make_world () in
  let replay =
    Run.exec ~pattern:pattern2
      ~policy:
        (Policy.script (Trace.schedule original.trace)
           ~then_:(fun ~now:_ ~enabled:_ -> None))
      ~horizon:200_000
      ~procs:(fun pid -> [ Upsilon_sa.proposer proto2 ~me:pid ~input:(pid + 1) ])
      ()
  in
  Alcotest.check Alcotest.string "identical traces"
    (Format.asprintf "%a" Trace.pp original.trace)
    (Format.asprintf "%a" Trace.pp replay.trace)

(* -- phi maps are empirically non-samples ------------------------------------ *)

(* For phi_D(d) = (S, w): build D over patterns whose correct set is
   exactly S and confirm no history stabilizes on d — the executable
   content of "sigma is not an f-resilient sample". *)

let pattern_with_correct ~n_plus_1 s =
  let crashes =
    Pid.all ~n_plus_1
    |> List.filter (fun p -> not (Pid.Set.mem p s))
    |> List.map (fun p -> (p, 20))
  in
  Failure_pattern.make ~n_plus_1 ~crashes

let test_phi_omega_is_non_sample () =
  let n_plus_1 = 4 and f = 2 in
  let phi = Phi.omega ~n_plus_1 ~f in
  List.iter
    (fun leader ->
      let { Phi.set = s; _ } = phi leader in
      let pattern = pattern_with_correct ~n_plus_1 s in
      (* every legal stable leader over this pattern is a correct process,
         i.e. a member of s, and d = leader is outside s *)
      for seed = 1 to 10 do
        let rng = Rng.create seed in
        let d = Omega.make ~rng ~pattern ~stab_time:0 () in
        checkb "cannot stabilize on d" false
          (Pid.equal (Detector.sample d (Pid.Set.choose s) 100) leader)
      done)
    (Pid.all ~n_plus_1)

let test_phi_upsilon_f_is_non_sample () =
  let n_plus_1 = 4 and f = 2 in
  let phi = Phi.upsilon_f ~n_plus_1 ~f in
  let u = Pid.Set.of_indices [ 0; 1; 2 ] in
  let { Phi.set = s; _ } = phi u in
  let pattern = pattern_with_correct ~n_plus_1 s in
  (* Upsilon_f over a pattern with correct = u must refuse to stabilize
     on u itself. *)
  checkb "phi is identity" true (Pid.Set.equal s u);
  Alcotest.check_raises "stable set u rejected"
    (Invalid_argument "Upsilon_f.make: stable set equals correct set")
    (fun () ->
      ignore
        (Upsilon_f.make ~rng:(Rng.create 1) ~pattern ~f ~stable_set:u ()))

let test_phi_suspicion_is_non_sample () =
  let n_plus_1 = 4 and f = 2 in
  let phi = Phi.suspicion ~n_plus_1 ~f in
  List.iter
    (fun suspected ->
      let { Phi.set = s; _ } = phi suspected in
      let pattern = pattern_with_correct ~n_plus_1 s in
      (* a P/<>P history over this pattern eventually outputs exactly
         Pi - s, which differs from d = suspected by construction *)
      let d = Perfect.make ~pattern in
      let eventual = Detector.sample d (Pid.Set.choose s) 1000 in
      checkb "eventual output is not d" false (Pid.Set.equal eventual suspected))
    (Pid.Set.subsets ~n_plus_1)

let suite =
  [
    Alcotest.test_case "sa_spec catches agreement violation" `Quick
      test_sa_spec_catches_agreement_violation;
    Alcotest.test_case "sa_spec catches validity violation" `Quick
      test_sa_spec_catches_validity_violation;
    Alcotest.test_case "sa_spec catches termination violation" `Quick
      test_sa_spec_catches_termination_violation;
    Alcotest.test_case "sa_spec ignores faulty non-deciders" `Quick
      test_sa_spec_ignores_faulty_nondeciders;
    Alcotest.test_case "oracle catches posthumous step" `Quick
      test_oracle_catches_posthumous_step;
    Alcotest.test_case "oracle catches duplicate times" `Quick
      test_oracle_catches_duplicate_times;
    Alcotest.test_case "oracle catches forged query value" `Quick
      test_oracle_catches_forged_query_value;
    Alcotest.test_case "schedule replay reproduces trace" `Quick
      test_schedule_replay_reproduces_trace;
    Alcotest.test_case "phi(omega) non-sample" `Quick test_phi_omega_is_non_sample;
    Alcotest.test_case "phi(upsilon_f) non-sample" `Quick
      test_phi_upsilon_f_is_non_sample;
    Alcotest.test_case "phi(suspicion) non-sample" `Quick
      test_phi_suspicion_is_non_sample;
  ]
