test/test_network.ml: Alcotest Array Failure_pattern Fun Kernel List Network Pid Policy QCheck QCheck_alcotest Rng Run Scheduler Test
