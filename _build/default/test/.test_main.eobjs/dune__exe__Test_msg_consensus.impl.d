test/test_msg_consensus.ml: Agreement Alcotest Detector Detectors Failure_pattern Int Kernel List Msg_consensus Omega Pid Policy Rng Run Sa_spec
