test/test_oracles.ml: Agreement Alcotest Detector Detectors Failure_pattern Format Kernel List Omega Oracle Perfect Phi Pid Policy Reduction Rng Run Sa_spec Sim Trace Upsilon Upsilon_f Upsilon_sa
