test/test_abd.ml: Abd Alcotest Failure_pattern Kernel List Memory Pid Policy Rng Run Scheduler Sim
