test/test_converge.ml: Alcotest Arena Array Commit_adopt Converge Failure_pattern Int Kernel List Pid Policy QCheck QCheck_alcotest Rng Run Scheduler Test
