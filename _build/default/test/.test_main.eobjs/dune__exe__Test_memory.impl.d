test/test_memory.ml: Alcotest Array Consensus_obj Failure_pattern Kernel List Memory Native_snapshot Pid Policy QCheck QCheck_alcotest Register Rng Run Scheduler Snapshot Test
