test/test_wfde.ml: Agreement Alcotest Detectors Failure_pattern Format Int Kernel List Pid Policy Rng Run String Wfde
