test/test_kernel.ml: Alcotest Failure_pattern Format Kernel List Oracle Pid Policy QCheck QCheck_alcotest Rng Run Scheduler Sim Test Trace
