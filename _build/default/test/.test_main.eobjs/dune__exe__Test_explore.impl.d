test/test_explore.ml: Alcotest Converge Explore Failure_pattern Int Kernel List Memory Pid Printf Register String
