(* End-to-end message-passing consensus: Omega + commit-adopt over
   ABD-emulated registers. Safety and termination under random schedules
   with minority crashes, plus linearizability of the underlying memory
   in every run. *)

open Kernel
open Detectors
open Agreement

let checkb = Alcotest.check Alcotest.bool

let run_msg_consensus ~seed ~n_plus_1 ~max_faulty =
  let rng = Rng.create seed in
  let pattern =
    Failure_pattern.random rng ~n_plus_1 ~max_faulty ~latest:400
  in
  let omega = Omega.make ~rng ~pattern () in
  let proto =
    Msg_consensus.create ~name:"mc" ~n_plus_1
      ~omega:(Detector.source omega)
  in
  let result =
    Run.exec ~pattern ~policy:(Policy.random rng) ~horizon:3_000_000
      ~procs:(fun pid -> Msg_consensus.fibers proto ~me:pid ~input:(800 + pid))
      ()
  in
  let verdict =
    Sa_spec.check ~k:1 ~pattern
      ~proposals:(List.map (fun p -> (p, 800 + p)) (Pid.all ~n_plus_1))
      ~decisions:(Msg_consensus.decisions proto)
      ()
  in
  (verdict, proto, pattern, result)

let test_failure_free () =
  let verdict, proto, _, _ =
    run_msg_consensus ~seed:1 ~n_plus_1:3 ~max_faulty:0
  in
  if not (Sa_spec.all_ok verdict) then
    Alcotest.failf "failure-free: %a" Sa_spec.pp verdict;
  checkb "memory linearizable" true (Msg_consensus.check_memory proto = Ok ())

let test_minority_crashes () =
  for seed = 1 to 8 do
    let n_plus_1 = 3 + (2 * (seed mod 2)) in
    (* minority: 1 of 3, or 2 of 5 *)
    let max_faulty = (n_plus_1 - 1) / 2 in
    let verdict, proto, pattern, _ =
      run_msg_consensus ~seed:(seed * 13) ~n_plus_1 ~max_faulty
    in
    if not (Sa_spec.all_ok verdict) then
      Alcotest.failf "seed %d (%a): %a" seed Failure_pattern.pp pattern
        Sa_spec.pp verdict;
    match Msg_consensus.check_memory proto with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "seed %d memory: %s" seed msg
  done

let test_single_decision_value () =
  for seed = 1 to 8 do
    let _, proto, _, _ =
      run_msg_consensus ~seed:(seed + 400) ~n_plus_1:3 ~max_faulty:1
    in
    let decided =
      Msg_consensus.decisions proto |> List.map snd
      |> List.sort_uniq Int.compare
    in
    checkb "exactly one value" true (List.length decided = 1)
  done

let test_safety_beyond_minority () =
  (* With 2 of 3 crashed (beyond the ABD liveness bound), survivors may
     block forever — but nothing unsafe happens: at most one decided
     value, memory linearizable. *)
  for seed = 1 to 10 do
    let rng = Rng.create (seed * 29) in
    let n_plus_1 = 3 in
    let pattern =
      Failure_pattern.make ~n_plus_1
        ~crashes:[ (0, 10 + seed); (1, 20 + seed) ]
    in
    let omega = Omega.make ~rng ~pattern ~leader:2 () in
    let proto =
      Msg_consensus.create ~name:"mc" ~n_plus_1
        ~omega:(Detector.source omega)
    in
    let _ =
      Run.exec ~pattern ~policy:(Policy.random rng) ~horizon:150_000
        ~procs:(fun pid ->
          Msg_consensus.fibers proto ~me:pid ~input:(800 + pid))
        ()
    in
    let decided =
      Msg_consensus.decisions proto |> List.map snd
      |> List.sort_uniq Int.compare
    in
    checkb "at most one value" true (List.length decided <= 1);
    checkb "memory linearizable" true
      (Msg_consensus.check_memory proto = Ok ())
  done

let suite =
  [
    Alcotest.test_case "failure-free" `Quick test_failure_free;
    Alcotest.test_case "minority crashes" `Slow test_minority_crashes;
    Alcotest.test_case "single decision value" `Quick
      test_single_decision_value;
    Alcotest.test_case "safety beyond the minority bound" `Quick
      test_safety_beyond_minority;
  ]
