(* Tests for the set-agreement protocols: Fig 1 (Theorem 2), Fig 2
   (Theorem 6), the Omega_k baseline, Omega-consensus, and the
   detector-free impossibility skeleton. Safety is checked on every run;
   termination within generous horizons. *)

open Kernel
open Detectors
open Agreement

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let horizon = 2_000_000

(* Run Fig 1 under the given pattern/policy/detector; return the spec
   verdict and protocol object. *)
let run_fig1 ?(inputs = fun pid -> 100 + pid) ?participants ~pattern ~policy
    ~upsilon () =
  let n_plus_1 = Failure_pattern.n_plus_1 pattern in
  let proto =
    Upsilon_sa.create ~name:"sa" ~n_plus_1 ~upsilon:(Detector.source upsilon) ()
  in
  let participating pid =
    match participants with None -> true | Some s -> Pid.Set.mem pid s
  in
  let result =
    Run.exec ~pattern ~policy ~horizon
      ~procs:(fun pid ->
        if participating pid then
          [ Upsilon_sa.proposer proto ~me:pid ~input:(inputs pid) ]
        else [])
      ()
  in
  let proposals =
    List.filter_map
      (fun pid -> if participating pid then Some (pid, inputs pid) else None)
      (Pid.all ~n_plus_1)
  in
  let verdict =
    Sa_spec.check ~k:(n_plus_1 - 1) ~pattern ~proposals
      ~decisions:(Upsilon_sa.decisions proto)
      ?participants ()
  in
  (verdict, proto, result)

let expect_ok label verdict =
  if not (Sa_spec.all_ok verdict) then
    Alcotest.failf "%s: %a" label Sa_spec.pp verdict

(* -- Fig 1 ------------------------------------------------------------------ *)

let test_fig1_failure_free_round_robin () =
  let pattern = Failure_pattern.no_failures ~n_plus_1:3 in
  let rng = Rng.create 1 in
  let upsilon = Upsilon.make ~rng ~pattern ~stab_time:0 () in
  let verdict, _, _ =
    run_fig1 ~pattern ~policy:(Policy.round_robin ()) ~upsilon ()
  in
  expect_ok "fig1 failure-free" verdict

let test_fig1_random_schedules_and_crashes () =
  for seed = 1 to 60 do
    let rng = Rng.create seed in
    let n_plus_1 = 2 + (seed mod 4) in
    let pattern =
      Failure_pattern.random rng ~n_plus_1 ~max_faulty:(n_plus_1 - 1)
        ~latest:300
    in
    let upsilon = Upsilon.make ~rng ~pattern () in
    let verdict, _, result =
      run_fig1 ~pattern ~policy:(Policy.random rng) ~upsilon ()
    in
    if not (Sa_spec.all_ok verdict) then
      Alcotest.failf "seed %d (pattern %a, outcome %s): %a" seed
        Failure_pattern.pp pattern
        (match result.outcome with
        | Scheduler.Horizon -> "horizon"
        | Scheduler.Quiescent -> "quiescent"
        | Scheduler.Policy_stop -> "policy-stop")
        Sa_spec.pp verdict
  done

let test_fig1_late_stabilization () =
  (* Υ spews garbage for a long prefix; the protocol must still decide. *)
  let pattern = Failure_pattern.make ~n_plus_1:4 ~crashes:[ (0, 50) ] in
  let rng = Rng.create 77 in
  let upsilon = Upsilon.make ~rng ~pattern ~stab_time:5_000 () in
  let verdict, _, _ =
    run_fig1 ~pattern ~policy:(Policy.random (Rng.create 78)) ~upsilon ()
  in
  expect_ok "fig1 late stabilization" verdict

let test_fig1_all_legal_stable_sets () =
  (* Theorem 2 holds whatever legal set Υ stabilizes to: sweep them all
     for a fixed pattern. *)
  let pattern = Failure_pattern.make ~n_plus_1:3 ~crashes:[ (0, 40) ] in
  List.iter
    (fun stable_set ->
      let rng = Rng.create 5 in
      let upsilon = Upsilon.make ~rng ~pattern ~stable_set ~stab_time:100 () in
      let verdict, _, _ =
        run_fig1 ~pattern ~policy:(Policy.random (Rng.create 6)) ~upsilon ()
      in
      if not (Sa_spec.all_ok verdict) then
        Alcotest.failf "stable set %s: %a"
          (Pid.Set.to_string stable_set)
          Sa_spec.pp verdict)
    (Upsilon.legal_stable_sets ~pattern)

let test_fig1_identical_inputs_decide_it () =
  let pattern = Failure_pattern.no_failures ~n_plus_1:4 in
  let rng = Rng.create 10 in
  let upsilon = Upsilon.make ~rng ~pattern ~stab_time:0 () in
  let verdict, proto, _ =
    run_fig1
      ~inputs:(fun _ -> 55)
      ~pattern
      ~policy:(Policy.random (Rng.create 11))
      ~upsilon ()
  in
  expect_ok "fig1 identical inputs" verdict;
  List.iter
    (fun (_, v) -> checki "decided the only input" 55 v)
    (Upsilon_sa.decisions proto)

let test_fig1_nonparticipation_remark () =
  (* Remark after Theorem 2: with a non-participant, round 1's n-converge
     sees at most n values and every correct participant decides in
     round 1. *)
  let n_plus_1 = 4 in
  let pattern = Failure_pattern.no_failures ~n_plus_1 in
  let rng = Rng.create 21 in
  let upsilon = Upsilon.make ~rng ~pattern ~stab_time:10 () in
  let participants = Pid.Set.of_indices [ 0; 1; 2 ] in
  let verdict, proto, _ =
    run_fig1 ~participants ~pattern
      ~policy:(Policy.random (Rng.create 22))
      ~upsilon ()
  in
  expect_ok "fig1 non-participation" verdict;
  List.iter
    (fun (_, r) -> checki "decided in round 1" 1 r)
    (Upsilon_sa.decision_rounds proto)

let test_fig1_lockstep_with_distinct_inputs () =
  (* The schedule that starves the detector-free skeleton forever is
     broken by Υ once it stabilizes. *)
  let pattern = Failure_pattern.no_failures ~n_plus_1:3 in
  let rng = Rng.create 31 in
  let upsilon = Upsilon.make ~rng ~pattern ~stab_time:0 () in
  let verdict, _, _ =
    run_fig1 ~pattern ~policy:(Policy.round_robin ()) ~upsilon ()
  in
  expect_ok "fig1 lockstep" verdict

let test_fig1_two_processes_is_consensus () =
  (* n = 1: 1-set agreement = consensus, solved with Υ (≡ Ω here). *)
  for seed = 1 to 20 do
    let rng = Rng.create (seed * 3) in
    let pattern =
      Failure_pattern.random rng ~n_plus_1:2 ~max_faulty:1 ~latest:100
    in
    let upsilon = Upsilon.make ~rng ~pattern () in
    let verdict, proto, _ =
      run_fig1 ~pattern ~policy:(Policy.random rng) ~upsilon ()
    in
    expect_ok "fig1 consensus" verdict;
    let decided = List.sort_uniq Int.compare (List.map snd (Upsilon_sa.decisions proto)) in
    checkb "single value" true (List.length decided <= 1)
  done

(* -- Fig 2 ------------------------------------------------------------------ *)

let run_fig2 ?(inputs = fun pid -> 200 + pid) ~pattern ~policy ~f ~upsilon_f ()
    =
  let n_plus_1 = Failure_pattern.n_plus_1 pattern in
  let proto =
    Upsilon_f_sa.create ~name:"fsa" ~n_plus_1 ~f
      ~upsilon_f:(Detector.source upsilon_f) ()
  in
  let result =
    Run.exec ~pattern ~policy ~horizon
      ~procs:(fun pid ->
        [ Upsilon_f_sa.proposer proto ~me:pid ~input:(inputs pid) ])
      ()
  in
  let proposals = List.map (fun pid -> (pid, inputs pid)) (Pid.all ~n_plus_1) in
  let verdict =
    Sa_spec.check ~k:f ~pattern ~proposals
      ~decisions:(Upsilon_f_sa.decisions proto)
      ()
  in
  (verdict, proto, result)

let test_fig2_failure_free () =
  let pattern = Failure_pattern.no_failures ~n_plus_1:4 in
  let rng = Rng.create 41 in
  let f = 2 in
  let upsilon_f = Upsilon_f.make ~rng ~pattern ~f ~stab_time:0 () in
  let verdict, _, _ =
    run_fig2 ~pattern ~policy:(Policy.round_robin ()) ~f ~upsilon_f ()
  in
  expect_ok "fig2 failure-free" verdict

let test_fig2_sweep_f_and_crashes () =
  for seed = 1 to 50 do
    let rng = Rng.create (seed * 7) in
    let n_plus_1 = 3 + (seed mod 3) in
    let f = 1 + (seed mod (n_plus_1 - 1)) in
    let pattern =
      Failure_pattern.random rng ~n_plus_1 ~max_faulty:f ~latest:300
    in
    let upsilon_f = Upsilon_f.make ~rng ~pattern ~f () in
    let verdict, _, _ =
      run_fig2 ~pattern ~policy:(Policy.random rng) ~f ~upsilon_f ()
    in
    if not (Sa_spec.all_ok verdict) then
      Alcotest.failf "seed %d (n+1=%d, f=%d, %a): %a" seed n_plus_1 f
        Failure_pattern.pp pattern Sa_spec.pp verdict
  done

let test_fig2_gladiator_only_case () =
  (* Υᶠ stabilizes to a strict superset of the correct set: all correct
     processes are gladiators and must converge through the snapshot
     mechanism alone (case D[r]=⊥ forever of the Theorem 6 proof). *)
  let n_plus_1 = 4 in
  let f = 2 in
  let pattern = Failure_pattern.make ~n_plus_1 ~crashes:[ (3, 60) ] in
  (* correct = {p1,p2,p3}; choose U = Π (≠ correct, |U| ≥ n+1−f) *)
  let rng = Rng.create 51 in
  let upsilon_f =
    Upsilon_f.make ~rng ~pattern ~f
      ~stable_set:(Pid.Set.full ~n_plus_1)
      ~stab_time:0 ()
  in
  let verdict, _, _ =
    run_fig2 ~pattern ~policy:(Policy.random (Rng.create 52)) ~f ~upsilon_f ()
  in
  expect_ok "fig2 gladiators only" verdict

let test_fig2_citizen_only_escape () =
  (* Υᶠ stabilizes to a set disjoint from some correct citizen: the
     citizen's D[r] write must unblock gladiators. *)
  let n_plus_1 = 4 in
  let f = 2 in
  let pattern = Failure_pattern.no_failures ~n_plus_1 in
  let rng = Rng.create 61 in
  let upsilon_f =
    Upsilon_f.make ~rng ~pattern ~f
      ~stable_set:(Pid.Set.of_indices [ 0; 1 ])
      ~stab_time:0 ()
  in
  let verdict, _, _ =
    run_fig2 ~pattern ~policy:(Policy.random (Rng.create 62)) ~f ~upsilon_f ()
  in
  expect_ok "fig2 citizen escape" verdict

let test_fig2_f_equals_n_matches_fig1 () =
  (* Υⁿ = Υ: at f = n, Fig 2 solves the same problem as Fig 1. *)
  let pattern = Failure_pattern.make ~n_plus_1:3 ~crashes:[ (1, 30) ] in
  let rng = Rng.create 71 in
  let f = 2 in
  let upsilon_f = Upsilon_f.make ~rng ~pattern ~f () in
  let verdict, _, _ =
    run_fig2 ~pattern ~policy:(Policy.random (Rng.create 72)) ~f ~upsilon_f ()
  in
  expect_ok "fig2 at f=n" verdict

(* -- Ωₖ baseline -------------------------------------------------------------- *)

let run_omega_k ?(inputs = fun pid -> 300 + pid) ~pattern ~policy ~k ~omega_k
    () =
  let n_plus_1 = Failure_pattern.n_plus_1 pattern in
  let proto =
    Omega_k_sa.create ~name:"oksa" ~n_plus_1 ~k
      ~omega_k:(Detector.source omega_k)
  in
  let result =
    Run.exec ~pattern ~policy ~horizon
      ~procs:(fun pid ->
        [ Omega_k_sa.proposer proto ~me:pid ~input:(inputs pid) ])
      ()
  in
  let proposals = List.map (fun pid -> (pid, inputs pid)) (Pid.all ~n_plus_1) in
  let verdict =
    Sa_spec.check ~k ~pattern ~proposals
      ~decisions:(Omega_k_sa.decisions proto)
      ()
  in
  (verdict, proto, result)

let test_omega_k_baseline () =
  for seed = 1 to 40 do
    let rng = Rng.create (seed * 11) in
    let n_plus_1 = 3 + (seed mod 3) in
    let k = 1 + (seed mod (n_plus_1 - 1)) in
    let pattern =
      Failure_pattern.random rng ~n_plus_1 ~max_faulty:(n_plus_1 - 1)
        ~latest:200
    in
    let omega_k = Omega_k.make ~rng ~pattern ~k () in
    let verdict, _, _ =
      run_omega_k ~pattern ~policy:(Policy.random rng) ~k ~omega_k ()
    in
    if not (Sa_spec.all_ok verdict) then
      Alcotest.failf "seed %d: %a" seed Sa_spec.pp verdict
  done

let test_omega_consensus () =
  for seed = 1 to 30 do
    let rng = Rng.create (seed * 13) in
    let n_plus_1 = 2 + (seed mod 3) in
    let pattern =
      Failure_pattern.random rng ~n_plus_1 ~max_faulty:(n_plus_1 - 1)
        ~latest:150
    in
    let omega = Omega.make ~rng ~pattern () in
    let proto =
      Omega_consensus.create ~name:"cons" ~n_plus_1
        ~omega:(Detector.source omega)
    in
    let _ =
      Run.exec ~pattern ~policy:(Policy.random rng) ~horizon
        ~procs:(fun pid ->
          [ Omega_consensus.proposer proto ~me:pid ~input:(400 + pid) ])
        ()
    in
    let proposals = List.map (fun pid -> (pid, 400 + pid)) (Pid.all ~n_plus_1) in
    let verdict =
      Sa_spec.check ~k:1 ~pattern ~proposals
        ~decisions:(Omega_consensus.decisions proto)
        ()
    in
    if not (Sa_spec.all_ok verdict) then
      Alcotest.failf "seed %d: %a" seed Sa_spec.pp verdict
  done

(* -- Impossibility skeleton ----------------------------------------------------- *)

let test_async_attempt_starves_under_lockstep () =
  (* Distinct inputs + lock-step round-robin: nobody ever decides (the
     impossibility's bad run), yet safety holds vacuously. *)
  let n_plus_1 = 3 in
  let pattern = Failure_pattern.no_failures ~n_plus_1 in
  let proto = Async_attempt.create ~name:"async" ~n_plus_1 in
  let result =
    Run.exec ~pattern
      ~policy:(Policy.round_robin ())
      ~horizon:100_000
      ~procs:(fun pid ->
        [ Async_attempt.proposer proto ~me:pid ~input:(500 + pid) ])
      ()
  in
  checkb "ran to horizon" true (result.outcome = Scheduler.Horizon);
  checki "nobody decided" 0 (List.length (Async_attempt.decisions proto));
  checkb "many rounds burned" true (Async_attempt.rounds_entered proto > 10)

let test_async_attempt_safety_always () =
  (* Under random schedules the skeleton may decide — but never more than
     n values, and only proposed ones. *)
  for seed = 1 to 40 do
    let rng = Rng.create (seed * 17) in
    let n_plus_1 = 3 in
    let pattern = Failure_pattern.no_failures ~n_plus_1 in
    let proto = Async_attempt.create ~name:"async" ~n_plus_1 in
    let _ =
      Run.exec ~pattern ~policy:(Policy.random rng) ~horizon:200_000
        ~procs:(fun pid ->
          [ Async_attempt.proposer proto ~me:pid ~input:(600 + pid) ])
        ()
    in
    let decided =
      List.sort_uniq Int.compare (List.map snd (Async_attempt.decisions proto))
    in
    checkb "agreement" true (List.length decided <= n_plus_1 - 1);
    checkb "validity" true
      (List.for_all (fun v -> v >= 600 && v < 600 + n_plus_1) decided)
  done

let test_async_attempt_identical_inputs_decides () =
  (* With a single input value, even the detector-free skeleton commits
     in round 1 — the impossibility needs input diversity. *)
  let n_plus_1 = 3 in
  let pattern = Failure_pattern.no_failures ~n_plus_1 in
  let proto = Async_attempt.create ~name:"async" ~n_plus_1 in
  let result =
    Run.exec ~pattern
      ~policy:(Policy.round_robin ())
      ~horizon:100_000
      ~procs:(fun pid -> [ Async_attempt.proposer proto ~me:pid ~input:7 ])
      ()
  in
  checkb "quiescent" true (result.outcome = Scheduler.Quiescent);
  checki "all decided" n_plus_1 (List.length (Async_attempt.decisions proto))

(* -- property tests -------------------------------------------------------------- *)

let qcheck_cases =
  let open QCheck in
  [
    Test.make ~count:60 ~name:"fig1: safety+termination over random worlds"
      small_nat
      (fun seed ->
        let rng = Rng.create ((seed * 41) + 3) in
        let n_plus_1 = 2 + (seed mod 4) in
        let pattern =
          Failure_pattern.random rng ~n_plus_1 ~max_faulty:(n_plus_1 - 1)
            ~latest:250
        in
        let upsilon = Upsilon.make ~rng ~pattern () in
        let verdict, _, _ =
          run_fig1 ~pattern ~policy:(Policy.random rng) ~upsilon ()
        in
        Sa_spec.all_ok verdict);
    Test.make ~count:50 ~name:"fig2: safety+termination over random worlds"
      small_nat
      (fun seed ->
        let rng = Rng.create ((seed * 43) + 5) in
        let n_plus_1 = 3 + (seed mod 3) in
        let f = 1 + (seed mod (n_plus_1 - 1)) in
        let pattern =
          Failure_pattern.random rng ~n_plus_1 ~max_faulty:f ~latest:250
        in
        let upsilon_f = Upsilon_f.make ~rng ~pattern ~f () in
        let verdict, _, _ =
          run_fig2 ~pattern ~policy:(Policy.random rng) ~f ~upsilon_f ()
        in
        Sa_spec.all_ok verdict);
    Test.make ~count:40
      ~name:"fig1 under weighted (asymmetric-speed) schedulers" small_nat
      (fun seed ->
        let rng = Rng.create ((seed * 47) + 7) in
        let n_plus_1 = 3 in
        let pattern =
          Failure_pattern.random rng ~n_plus_1 ~max_faulty:2 ~latest:150
        in
        let upsilon = Upsilon.make ~rng ~pattern () in
        let weights = [ (0, 10); (1, 1); (2, 3) ] in
        let verdict, _, _ =
          run_fig1 ~pattern ~policy:(Policy.weighted rng ~weights) ~upsilon ()
        in
        Sa_spec.all_ok verdict);
  ]

let suite =
  [
    Alcotest.test_case "fig1 failure-free round-robin" `Quick
      test_fig1_failure_free_round_robin;
    Alcotest.test_case "fig1 random schedules+crashes" `Quick
      test_fig1_random_schedules_and_crashes;
    Alcotest.test_case "fig1 late stabilization" `Quick
      test_fig1_late_stabilization;
    Alcotest.test_case "fig1 all legal stable sets" `Quick
      test_fig1_all_legal_stable_sets;
    Alcotest.test_case "fig1 identical inputs" `Quick
      test_fig1_identical_inputs_decide_it;
    Alcotest.test_case "fig1 non-participation remark" `Quick
      test_fig1_nonparticipation_remark;
    Alcotest.test_case "fig1 lockstep distinct inputs" `Quick
      test_fig1_lockstep_with_distinct_inputs;
    Alcotest.test_case "fig1 two-process consensus" `Quick
      test_fig1_two_processes_is_consensus;
    Alcotest.test_case "fig2 failure-free" `Quick test_fig2_failure_free;
    Alcotest.test_case "fig2 sweep f and crashes" `Quick
      test_fig2_sweep_f_and_crashes;
    Alcotest.test_case "fig2 gladiators only" `Quick
      test_fig2_gladiator_only_case;
    Alcotest.test_case "fig2 citizen escape" `Quick
      test_fig2_citizen_only_escape;
    Alcotest.test_case "fig2 f=n" `Quick test_fig2_f_equals_n_matches_fig1;
    Alcotest.test_case "omega_k baseline" `Quick test_omega_k_baseline;
    Alcotest.test_case "omega consensus" `Quick test_omega_consensus;
    Alcotest.test_case "async skeleton starves (lockstep)" `Quick
      test_async_attempt_starves_under_lockstep;
    Alcotest.test_case "async skeleton safety" `Quick
      test_async_attempt_safety_always;
    Alcotest.test_case "async skeleton, one input" `Quick
      test_async_attempt_identical_inputs_decides;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_cases
