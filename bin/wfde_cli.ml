(* The wfde command-line interface.

     wfde run [EXPERIMENTS...] [--scale N] [-j N]   (also the default command)
     wfde list
     wfde trace --protocol fig1 --seed 7 --n 4 [--limit 120] [--out F.jsonl]
     wfde stats [EXPERIMENTS...] [--scale N] [--json PATH]
     wfde sweep [EXPERIMENTS...] [-j N] [--scale N] [--json PATH]
     wfde serve --socket PATH [--workers N] [--queue N]
     wfde client METHOD --socket PATH [--params JSON] [--deadline-ms N]

   Experiments are the paper-claim tables of DESIGN.md (e1..e11, a1..a3);
   trace replays one world and dumps the step-by-step run, including the
   values every detector query returned (or exports it as JSONL); stats
   runs experiments and dumps the telemetry registry they populated;
   serve/client are the wfde-rpc/1 daemon and its line client. *)

open Cmdliner

(* Integer options validated at parse time: a malformed or out-of-range
   value is a one-line usage error with a nonzero exit, never a raw
   exception out of the guts (Dpor raises on depth < 1, several
   experiment drivers on scale < 1, ...). *)
let bounded_int ~what ~min:lo ~max:hi =
  let parse s =
    match int_of_string_opt s with
    | Some v when v >= lo && v <= hi -> Ok v
    | Some _ | None ->
        Error
          (`Msg (Printf.sprintf "%s must be an integer in [%d, %d]" what lo hi))
  in
  Arg.conv (parse, Format.pp_print_int)

(* ------------------------------------------------------------- run --- *)

(* Experiment selection and execution shared with the daemon: unknown
   ids fail with one clean line, and payload-visible output goes
   through Serve.Service's renderers so 'wfde run' and a daemon 'run'
   request agree byte for byte. *)

let reject_unknown_ids ids =
  match Serve.Service.unknown_ids ids with
  | [] -> true
  | unknown ->
      Format.eprintf "unknown experiment id(s): %s (see 'wfde list')@."
        (String.concat ", " unknown);
      false

let timed_outcomes ?impl ids ~scale ~jobs =
  let ids = if ids = [] then List.map fst Wfde.Experiments.catalog else ids in
  List.map
    (fun id ->
      let f = Option.get (Wfde.Experiments.by_id id) in
      let t0 = Unix.gettimeofday () in
      let outcome = f ~scale ~jobs ?impl () in
      let wall = Unix.gettimeofday () -. t0 in
      (id, outcome, wall))
    ids

let run_ids ids scale jobs impl =
  if not (reject_unknown_ids ids) then 2
  else begin
    let outcomes =
      List.map (fun (_, o, _) -> o) (timed_outcomes ?impl ids ~scale ~jobs)
    in
    print_string (Serve.Service.run_text outcomes);
    if List.for_all (fun o -> o.Wfde.Experiments.ok) outcomes then 0 else 1
  end

let ids_arg =
  let doc =
    "Experiments to run: e1..e11, a1..a3, c1, d1..d3. Runs everything \
     when omitted."
  in
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)

let scale_arg =
  let doc = "Multiply default seed counts / phase budgets by this factor." in
  Arg.(
    value
    & opt (bounded_int ~what:"--scale" ~min:1 ~max:1_000_000) 1
    & info [ "scale"; "s" ] ~docv:"N" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the parallel sweep pool (clamped to 1-64). The \
     output is byte-identical at every value; only wall time changes."
  in
  Arg.(
    value
    & opt (bounded_int ~what:"--jobs" ~min:1 ~max:64) 1
    & info [ "jobs"; "j" ] ~docv:"J" ~doc)

(* Implemented-detector selection, shared by run/stats/check/sweep.
   [--detector-impl hb] swaps the oracle detectors for heartbeat
   implementations over a partially synchronous link whose config is
   built from [--gst]/[--loss] (remaining fields fixed so the same
   flags always name the same link). *)

let detector_impl_arg =
  let doc =
    "Detector implementation: $(b,oracle) (histories conjured from the \
     failure pattern; the default) or $(b,hb) (increasing-timeout \
     heartbeats over a partially synchronous link). With $(b,hb), \
     run/sweep/stats add the gated implemented-detector rows to e5/e11, \
     and check defaults its object to the heartbeat-detector scenario."
  in
  Arg.(
    value
    & opt (Arg.enum [ ("oracle", `Oracle); ("hb", `Hb) ]) `Oracle
    & info [ "detector-impl" ] ~docv:"IMPL" ~doc)

let gst_arg =
  let doc =
    "Global stabilization time of the simulated link (in scheduler \
     steps): before it messages may be delayed or dropped, from it on \
     delivery is reliable and timely. Only meaningful with \
     $(b,--detector-impl hb)."
  in
  Arg.(
    value
    & opt (bounded_int ~what:"--gst" ~min:0 ~max:1_000_000) 40
    & info [ "gst" ] ~docv:"N" ~doc)

let loss_arg =
  let doc =
    "Pre-GST message-loss percentage of the simulated link. Only \
     meaningful with $(b,--detector-impl hb)."
  in
  Arg.(
    value
    & opt (bounded_int ~what:"--loss" ~min:0 ~max:100) 50
    & info [ "loss" ] ~docv:"P" ~doc)

let impl_config impl gst loss =
  match impl with
  | `Oracle -> None
  | `Hb ->
      Some
        {
          Wfde.Link.gst;
          delta = 2;
          pre_delay = (gst + 3) / 4;
          loss_pct = loss;
          link_seed = 7;
        }

let impl_term = Term.(const impl_config $ detector_impl_arg $ gst_arg $ loss_arg)

let run_cmd =
  let doc = "run experiments (the default command)" in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run_ids $ ids_arg $ scale_arg $ jobs_arg $ impl_term)

(* ------------------------------------------------------------- list --- *)

let list_experiments () =
  List.iter
    (fun (id, description) -> Format.printf "%-4s %s@." id description)
    Wfde.Experiments.catalog;
  0

let list_cmd =
  let doc = "list every experiment id and the claim it regenerates" in
  Cmd.v (Cmd.info "list" ~doc) Term.(const list_experiments $ const ())

(* ------------------------------------------------------------ trace --- *)

let dump_trace protocol seed n_plus_1 f limit out =
  let world =
    Wfde.Harness.random_world ~seed ~n_plus_1 ~max_faulty:(n_plus_1 - 1) ()
  in
  let rng = Wfde.Rng.create seed in
  let run_result, description =
    match protocol with
    | "fig1" ->
        let upsilon =
          Wfde.Upsilon.make ~rng ~pattern:world.Wfde.Harness.pattern ()
        in
        let proto =
          Wfde.Upsilon_sa.create ~name:"t" ~n_plus_1
            ~upsilon:(Wfde.Detector.source upsilon) ()
        in
        ( Wfde.Run.exec ~pattern:world.Wfde.Harness.pattern
            ~policy:world.Wfde.Harness.policy ~horizon:500_000
            ~procs:(fun pid ->
              [ Wfde.Upsilon_sa.proposer proto ~me:pid ~input:(100 + pid) ])
            (),
          "Fig 1: upsilon-based n-set-agreement" )
    | "fig2" ->
        let pattern =
          let rng2 = Wfde.Rng.create (seed + 1) in
          Wfde.Failure_pattern.random rng2 ~n_plus_1 ~max_faulty:f ~latest:300
        in
        let upsilon_f = Wfde.Upsilon_f.make ~rng ~pattern ~f () in
        let proto =
          Wfde.Upsilon_f_sa.create ~name:"t" ~n_plus_1 ~f
            ~upsilon_f:(Wfde.Detector.source upsilon_f) ()
        in
        ( Wfde.Run.exec ~pattern ~policy:world.Wfde.Harness.policy
            ~horizon:500_000
            ~procs:(fun pid ->
              [ Wfde.Upsilon_f_sa.proposer proto ~me:pid ~input:(200 + pid) ])
            (),
          "Fig 2: upsilon_f-based f-set-agreement" )
    | "async" ->
        let proto = Wfde.Agreement.Async_attempt.create ~name:"t" ~n_plus_1 in
        ( Wfde.Run.exec ~pattern:(Wfde.Failure_pattern.no_failures ~n_plus_1)
            ~policy:(Wfde.Policy.round_robin ())
            ~horizon:(limit * 2)
            ~procs:(fun pid ->
              [
                Wfde.Agreement.Async_attempt.proposer proto ~me:pid
                  ~input:(500 + pid);
              ])
            (),
          "detector-free skeleton under lock-step (the impossibility run)" )
    | other ->
        Format.eprintf "unknown protocol %S (expected fig1, fig2, or async)@."
          other;
        exit 2
  in
  let events = run_result.Wfde.Run.trace in
  match out with
  | Some path -> (
      match Wfde.Trace_export.save_file path events with
      | () ->
          Format.printf "%s@.wrote %d events to %s@." description
            (List.length events) path;
          0
      | exception Sys_error msg ->
          Format.eprintf "cannot write trace: %s@." msg;
          1)
  | None ->
      Format.printf "%s@.world: %a@.@." description Wfde.Failure_pattern.pp
        (match protocol with
        | "async" -> Wfde.Failure_pattern.no_failures ~n_plus_1
        | _ -> world.Wfde.Harness.pattern);
      List.iteri
        (fun i e ->
          if i < limit then Format.printf "%a@." Wfde.Trace.pp_event e)
        events;
      let total = List.length events in
      if total > limit then
        Format.printf "... (%d more events)@." (total - limit);
      Format.printf "@.decisions:@.";
      List.iter
        (fun (pid, t, _, v) ->
          Format.printf "  t=%-6d %a decided %s@." t Wfde.Pid.pp pid v)
        (Wfde.Trace.outputs ~label:"decide" events);
      0

let trace_cmd =
  let protocol_arg =
    let doc = "Protocol to trace: fig1, fig2, or async." in
    Arg.(value & opt string "fig1" & info [ "protocol"; "p" ] ~docv:"P" ~doc)
  in
  let seed_arg =
    Arg.(
      value
      & opt (bounded_int ~what:"--seed" ~min:0 ~max:max_int) 1
      & info [ "seed" ] ~docv:"SEED" ~doc:"World seed.")
  in
  let n_arg =
    Arg.(
      value
      & opt (bounded_int ~what:"--n" ~min:2 ~max:64) 3
      & info [ "n"; "procs" ] ~docv:"N+1" ~doc:"Number of processes.")
  in
  let f_arg =
    Arg.(
      value
      & opt (bounded_int ~what:"--f" ~min:1 ~max:63) 1
      & info [ "f"; "faulty" ] ~docv:"F" ~doc:"Resilience (fig2 only).")
  in
  let limit_arg =
    Arg.(
      value
      & opt (bounded_int ~what:"--limit" ~min:0 ~max:max_int) 120
      & info [ "limit" ] ~docv:"K" ~doc:"Print at most K events.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:
            "Export the full trace as JSONL (one event per line) to $(docv) \
             instead of printing it; reload with Trace_export.load_file.")
  in
  let doc = "replay one world and dump its step-by-step trace" in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(
      const dump_trace $ protocol_arg $ seed_arg $ n_arg $ f_arg $ limit_arg
      $ out_arg)

(* ------------------------------------------------------------ stats --- *)

let stats_body ids scale jobs impl json_path format =
  Wfde.Metrics.reset ();
  let outcomes =
    List.map (fun (_, o, _) -> o) (timed_outcomes ?impl ids ~scale ~jobs)
  in
  let failed = List.filter (fun o -> not o.Wfde.Experiments.ok) outcomes in
  let snap = Wfde.Metrics.snapshot () in
  (match format with
  | `Prom -> print_string (Wfde.Obs.Prom.render snap)
  | `Table ->
      let title =
        Printf.sprintf "telemetry after %d experiment(s): %s"
          (List.length outcomes)
          (String.concat " "
             (List.map (fun o -> o.Wfde.Experiments.id) outcomes))
      in
      Format.printf "%s@."
        (Wfde.Report.to_string (Wfde.Report.of_metrics ~title snap)));
  let json_failed =
    match json_path with
    | None -> false
    | Some path -> (
        match open_out path with
        | oc ->
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () ->
                output_string oc
                  (Wfde.Json.to_string (Wfde.Metrics.to_json snap));
                output_char oc '\n');
            Format.printf "wrote metrics JSON to %s@." path;
            false
        | exception Sys_error msg ->
            Format.eprintf "cannot write metrics JSON: %s@." msg;
            true)
  in
  if json_failed then 1
  else if failed = [] then 0
  else begin
    Format.printf "FAILED claims: %s@."
      (String.concat ", " (List.map (fun o -> o.Wfde.Experiments.id) failed));
    1
  end

let run_stats ids scale jobs impl json_path format =
  if not (reject_unknown_ids ids) then 2
  else stats_body ids scale jobs impl json_path format

let stats_cmd =
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:"Also write the metrics snapshot as a JSON document to $(docv).")
  in
  let format_arg =
    let doc =
      "Output format: $(b,table) (the human report) or $(b,prom) \
       (Prometheus text exposition 0.0.4, the same body the daemon's \
       metrics method returns with format=prom)."
    in
    Arg.(
      value
      & opt (enum [ ("table", `Table); ("prom", `Prom) ]) `Table
      & info [ "format" ] ~docv:"FMT" ~doc)
  in
  let doc =
    "run experiments and dump the telemetry-registry counters they populated"
  in
  Cmd.v (Cmd.info "stats" ~doc)
    Term.(
      const run_stats $ ids_arg $ scale_arg $ jobs_arg $ impl_term $ json_arg
      $ format_arg)

(* ------------------------------------------------------------ check --- *)

let run_check obj_name procs depth horizon jobs mutant_name impl json_path =
  let fail msg =
    Format.eprintf "%s@." msg;
    2
  in
  let obj =
    (* --detector-impl hb picks the heartbeat-detector scenario over the
       flag-built link unless --object names something explicitly *)
    match (obj_name, impl) with
    | None, Some cfg -> Ok (Wfde.Scenario.Hb_detector cfg)
    | None, None -> Wfde.Scenario.of_string "register"
    | Some name, _ -> Wfde.Scenario.of_string name
  in
  match obj with
  | Error msg -> fail msg
  | Ok obj -> (
      let mutant =
        match mutant_name with
        | None -> Ok None
        | Some m -> Result.map Option.some (Wfde.Mutant.of_string m)
      in
      match mutant with
      | Error msg -> fail msg
      | Ok mutant -> (
          let outcome =
            Wfde.Harness.check_exhaustive ~jobs ?procs ~depth ~horizon
              ?mutant obj
          in
          (* same renderer the daemon and the fabric merge use, so all
             three surfaces stay byte-identical by construction *)
          print_string (Serve.Service.check_text outcome);
          let json_failed =
            match json_path with
            | None -> false
            | Some path -> (
                match open_out path with
                | oc ->
                    Fun.protect
                      ~finally:(fun () -> close_out oc)
                      (fun () ->
                        output_string oc
                          (Wfde.Json.to_string
                             (Wfde.Harness.check_outcome_json outcome));
                        output_char oc '\n');
                    Format.printf "wrote check outcome JSON to %s@." path;
                    false
                | exception Sys_error msg ->
                    Format.eprintf "cannot write check JSON: %s@." msg;
                    true)
          in
          let found = outcome.Wfde.Harness.violation <> None in
          (* with a planted mutant the expectation inverts: finding the
             bug is the success criterion *)
          let expected = match mutant with Some _ -> found | None -> not found in
          if json_failed then 1 else if expected then 0 else 1))

let check_cmd =
  let obj_arg =
    let doc =
      "Object to check: register, snapshot, abd, commit-adopt, \
       hb-detector, or link-chaos (default register; the two link-layer \
       scenarios also accept an inline config, e.g. \
       $(b,hb-detector(gst=12,delta=2,pre_delay=6,loss=50,seed=3)))."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "object"; "obj" ] ~docv:"OBJ" ~doc)
  in
  let procs_arg =
    let doc =
      "Number of processes (clamped up to the scenario's minimum; default 2)."
    in
    Arg.(
      value
      & opt (some (bounded_int ~what:"--procs" ~min:1 ~max:64)) None
      & info [ "procs"; "n" ] ~docv:"N+1" ~doc)
  in
  let depth_arg =
    let doc = "Schedule-choice window: explore every class of the first $(docv) steps." in
    Arg.(
      value
      & opt (bounded_int ~what:"--depth" ~min:1 ~max:64) 6
      & info [ "depth"; "d" ] ~docv:"D" ~doc)
  in
  let horizon_arg =
    let doc = "Step budget per execution (completes runs past the window)." in
    Arg.(
      value
      & opt (bounded_int ~what:"--horizon" ~min:1 ~max:100_000_000) 400
      & info [ "horizon" ] ~docv:"H" ~doc)
  in
  let mutant_arg =
    let doc =
      "Plant a bug first: abd-skip-write-back, snapshot-single-collect, \
       converge-drop-phase2, hb-timeout-never-increased, or \
       hb-suspected-not-restored. Exit 0 then means 'caught'."
    in
    Arg.(value & opt (some string) None & info [ "mutant" ] ~docv:"M" ~doc)
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:"Also write the outcome as a JSON document to $(docv).")
  in
  let doc = "model-check a shared object under every schedule class" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Explores every Mazurkiewicz class of depth-bounded schedule \
         prefixes with optimal dynamic partial-order reduction (source \
         sets and wakeup trees), \
         checking linearizability (Wing-Gong) or agreement on each \
         executed run, sweeping the scenario's failure patterns. A found \
         counterexample is ddmin-shrunk and confirmed by script replay. \
         Without --mutant, exit 0 means no violation; with --mutant, exit \
         0 means the planted bug was caught.";
    ]
  in
  Cmd.v (Cmd.info "check" ~doc ~man)
    Term.(
      const run_check $ obj_arg $ procs_arg $ depth_arg $ horizon_arg
      $ jobs_arg $ mutant_arg $ impl_term $ json_arg)

(* ------------------------------------------------------------ sweep --- *)

(* Timed experiment sweep. Tables go to stdout and are byte-identical at
   every -j (the determinism contract of Exec.Pool); wall-clock timings
   go to stderr and the optional JSON document, which are the only
   places nondeterminism is allowed to show. *)

let sweep_body ids scale jobs impl json_path =
  let timed = timed_outcomes ?impl ids ~scale ~jobs in
  let outcomes = List.map (fun (_, o, _) -> o) timed in
  (* tables (and the failed-claims line, when any) come from the same
     renderer the daemon's sweep payload embeds *)
  print_string (Serve.Service.sweep_text outcomes);
  let total = List.fold_left (fun acc (_, _, w) -> acc +. w) 0.0 timed in
  List.iter
    (fun (id, _, w) -> Format.eprintf "%-4s %8.3fs@." id w)
    timed;
  Format.eprintf "%-4s %8.3fs (jobs=%d)@." "all" total jobs;
  let failed =
    List.filter (fun (_, o, _) -> not o.Wfde.Experiments.ok) timed
  in
  let json_failed =
    match json_path with
    | None -> false
    | Some path -> (
        let doc = Serve.Service.sweep_json ~jobs ~scale timed in
        match open_out path with
        | oc ->
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () ->
                output_string oc (Wfde.Json.to_string doc);
                output_char oc '\n');
            Format.eprintf "wrote sweep JSON to %s@." path;
            false
        | exception Sys_error msg ->
            Format.eprintf "cannot write sweep JSON: %s@." msg;
            true)
  in
  if json_failed then 1 else if failed = [] then 0 else 1

let run_sweep ids scale jobs impl json_path =
  if not (reject_unknown_ids ids) then 2
  else sweep_body ids scale jobs impl json_path

let sweep_cmd =
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:
            "Write a wfde-sweep/1 JSON document (per-experiment wall times) \
             to $(docv).")
  in
  let doc = "run experiments on the parallel pool and time each one" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the selected experiments (all of them by default) with their \
         independent work units sharded over $(b,--jobs) worker domains. \
         Tables print to stdout and are byte-identical at every $(b,-j) \
         value; per-experiment wall-clock timings print to stderr and to \
         the $(b,--json) document, which are the only outputs allowed to \
         vary between runs.";
    ]
  in
  Cmd.v (Cmd.info "sweep" ~doc ~man)
    Term.(
      const run_sweep $ ids_arg $ scale_arg $ jobs_arg $ impl_term $ json_arg)

(* ------------------------------------------------------------ serve --- *)

let socket_arg =
  let doc = "Unix-domain socket path the daemon listens on." in
  Arg.(
    value
    & opt string "/tmp/wfde.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc)

let run_serve socket workers queue_capacity cache_capacity cache_dir trace_out
    slow_ms =
  match
    Option.map
      (fun path ->
        match open_out path with
        | oc -> oc
        | exception Sys_error msg -> failwith msg)
      trace_out
  with
  | exception Failure msg ->
      Format.eprintf "cannot open --trace-out: %s@." msg;
      1
  | trace_chan -> (
      let trace =
        Option.map (fun oc -> Wfde.Obs.Span.sink ~out:oc ()) trace_chan
      in
      let close_trace () = Option.iter close_out trace_chan in
      match
        Serve.Daemon.start ?trace
          ?slow_ms:(Option.map float_of_int slow_ms)
          ~cache:{ Serve.Cache.capacity = cache_capacity; dir = cache_dir }
          ~workers ~queue_capacity ~socket ()
      with
      | t ->
          (* the readiness line CI and scripts wait for *)
          Format.printf
            "wfde serve: listening on %s (workers=%d queue=%d cache=%d%s%s)@."
            socket workers queue_capacity cache_capacity
            (match cache_dir with
            | None -> ""
            | Some d -> Printf.sprintf " cache-dir=%s" d)
            (match trace_out with
            | None -> ""
            | Some p -> Printf.sprintf " trace-out=%s" p);
          Serve.Daemon.run_forever t;
          close_trace ();
          Format.printf "wfde serve: drained, bye@.";
          0
      | exception Unix.Unix_error (e, _, arg) ->
          close_trace ();
          Format.eprintf "cannot listen on %s: %s %s@." socket
            (Unix.error_message e) arg;
          1)

let serve_cmd =
  let workers_arg =
    let doc = "Worker domains executing requests." in
    Arg.(
      value
      & opt (bounded_int ~what:"--workers" ~min:1 ~max:64) 2
      & info [ "workers" ] ~docv:"W" ~doc)
  in
  let queue_arg =
    let doc = "Bounded job-queue capacity; a full queue rejects with queue_full." in
    Arg.(
      value
      & opt (bounded_int ~what:"--queue" ~min:1 ~max:4096) 64
      & info [ "queue" ] ~docv:"Q" ~doc)
  in
  let trace_out_arg =
    let doc =
      "Enable request tracing and append wfde-span/1 JSONL (one span per \
       line) to $(docv). Only requests that carry a trace id are traced; \
       render the file with $(b,wfde spans)."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE" ~doc)
  in
  let slow_ms_arg =
    let doc =
      "Log one structured slow_request JSON line to stderr for every \
       request that takes at least $(docv) milliseconds."
    in
    Arg.(
      value
      & opt (some (bounded_int ~what:"--slow-ms" ~min:0 ~max:86_400_000)) None
      & info [ "slow-ms" ] ~docv:"MS" ~doc)
  in
  let cache_arg =
    let doc =
      "In-memory result-cache capacity (entries) for run/check/sweep \
       responses; 0 disables caching."
    in
    Arg.(
      value
      & opt (bounded_int ~what:"--cache" ~min:0 ~max:1_000_000) 256
      & info [ "cache" ] ~docv:"N" ~doc)
  in
  let cache_dir_arg =
    let doc =
      "Back the result cache with a content-addressed store under \
       $(docv) (created if missing; entries survive daemon restarts)."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR" ~doc)
  in
  let doc = "run the wfde-rpc/1 daemon on a Unix-domain socket" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Serves newline-delimited JSON requests (run, check, sweep, stats, \
         sleep, health, metrics) over a Unix-domain socket. Work executes \
         on a bounded worker fleet: a full queue rejects immediately with \
         a structured queue_full error, per-request deadline_ms cancels \
         cooperatively, and SIGTERM/SIGINT drain gracefully (in-flight \
         and queued requests complete; new ones are refused). Payloads \
         are byte-identical to the matching CLI output.";
      `P
        "With $(b,--trace-out), requests carrying a trace id export a \
         span tree (accept/parse/queue/dispatch/execute/render plus \
         method-specific children) as wfde-span/1 JSONL; with \
         $(b,--slow-ms), requests at least that slow log one structured \
         JSON line to stderr. Neither changes response payload bytes.";
      `P
        "run/check/sweep responses are served through a content-addressed \
         result cache ($(b,--cache) entries in memory, optionally \
         persisted under $(b,--cache-dir)); hits replay the stored bytes \
         from the connection thread, bypassing the worker fleet. Inspect \
         or clear it with $(b,wfde cache).";
    ]
  in
  Cmd.v (Cmd.info "serve" ~doc ~man)
    Term.(
      const run_serve $ socket_arg $ workers_arg $ queue_arg $ cache_arg
      $ cache_dir_arg $ trace_out_arg $ slow_ms_arg)

(* ----------------------------------------------------------- client --- *)

let run_client meth socket params_json id deadline_ms trace envelope =
  let params =
    match params_json with
    | None -> Ok []
    | Some s -> (
        match Wfde.Json.of_string s with
        | Ok (Wfde.Json.Obj kvs) -> Ok kvs
        | Ok _ -> Error "--params must be a JSON object"
        | Error e -> Error (Printf.sprintf "--params is not valid JSON: %s" e))
  in
  match params with
  | Error msg ->
      Format.eprintf "%s@." msg;
      2
  | Ok params -> (
      let req =
        {
          Serve.Proto.id =
            (match id with None -> Wfde.Json.Null | Some s -> Wfde.Json.String s);
          meth;
          params;
          deadline_ms;
          trace;
        }
      in
      match Serve.Client.rpc ~socket req with
      | Error msg ->
          Format.eprintf "transport error: %s@." msg;
          3
      | Ok resp -> (
          if envelope then begin
            let doc =
              match resp.Serve.Proto.result with
              | Ok payload ->
                  Serve.Proto.ok_response ~id:resp.Serve.Proto.resp_id
                    ~wall_ms:resp.Serve.Proto.wall_ms payload
              | Error e ->
                  Serve.Proto.error_response ~id:resp.Serve.Proto.resp_id
                    ~wall_ms:resp.Serve.Proto.wall_ms e
            in
            print_string (Wfde.Json.to_string doc);
            print_newline ()
          end;
          match resp.Serve.Proto.result with
          | Ok payload ->
              if not envelope then begin
                print_string (Wfde.Json.to_string payload);
                print_newline ()
              end;
              0
          | Error e ->
              if not envelope then
                Format.eprintf "%s: %s@."
                  (Serve.Proto.code_to_string e.Serve.Proto.code)
                  e.Serve.Proto.message;
              (* distinguishable failures for scripts: 124 deadline,
                 75 queue_full/backpressure, 1 everything else *)
              Serve.Proto.exit_code e.Serve.Proto.code))

let client_cmd =
  let meth_arg =
    let doc =
      "Method to call: run, check, sweep, stats, sleep, health, metrics, \
       or cache."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"METHOD" ~doc)
  in
  let params_arg =
    let doc = "Method parameters as a JSON object." in
    Arg.(
      value & opt (some string) None & info [ "params" ] ~docv:"JSON" ~doc)
  in
  let id_arg =
    let doc = "Request id, echoed back in the envelope." in
    Arg.(value & opt (some string) None & info [ "id" ] ~docv:"ID" ~doc)
  in
  let deadline_arg =
    let doc = "Per-request deadline in milliseconds." in
    Arg.(
      value
      & opt (some (bounded_int ~what:"--deadline-ms" ~min:1 ~max:86_400_000)) None
      & info [ "deadline-ms" ] ~docv:"MS" ~doc)
  in
  let trace_arg =
    let doc =
      "Trace id attached to the request; a daemon started with \
       $(b,--trace-out) exports the request's span tree under this id."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"ID" ~doc)
  in
  let envelope_arg =
    let doc =
      "Print the full wfde-rpc/1 envelope instead of just the payload."
    in
    Arg.(value & flag & info [ "envelope" ] ~doc)
  in
  let doc = "send one request to a running wfde daemon" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Connects to the daemon's Unix socket, sends one request, prints \
         the payload JSON on stdout (exit 0), a structured server error \
         on stderr, or a transport error (exit 3). With $(b,--envelope) \
         the whole response envelope prints instead. Because daemon \
         payloads are byte-identical to CLI output, 'wfde client sweep \
         --params ...' and 'wfde sweep --json -' style pipelines can be \
         diffed directly.";
      `P
        "Server errors exit with distinguishable codes: 124 for \
         deadline_exceeded (the timeout(1) convention), 75 for \
         queue_full (EX_TEMPFAIL: retry later), 1 for everything else.";
      `S Manpage.s_examples;
      `Pre
        "  wfde client health --socket /tmp/wfde.sock\n\
        \  wfde client run --params '{\"experiments\":[\"e1\"]}'\n\
        \  wfde client check --params '{\"object\":\"abd\",\"procs\":3}' \
         --deadline-ms 30000\n\
        \  wfde client run --trace t1 --params '{\"experiments\":[\"e1\"]}'\n\
        \  wfde client metrics --params '{\"format\":\"prom\"}'";
    ]
  in
  Cmd.v (Cmd.info "client" ~doc ~man)
    Term.(
      const run_client $ meth_arg $ socket_arg $ params_arg $ id_arg
      $ deadline_arg $ trace_arg $ envelope_arg)

(* ------------------------------------------------------------ cache --- *)

let run_cache op socket =
  let req =
    {
      Serve.Proto.id = Wfde.Json.Null;
      meth = "cache";
      params = [ ("op", Wfde.Json.String op) ];
      deadline_ms = None;
      trace = None;
    }
  in
  match Serve.Client.rpc ~socket req with
  | Error msg ->
      Format.eprintf "transport error: %s@." msg;
      3
  | Ok resp -> (
      match resp.Serve.Proto.result with
      | Ok payload ->
          print_string (Wfde.Json.to_string payload);
          print_newline ();
          0
      | Error e ->
          Format.eprintf "%s: %s@."
            (Serve.Proto.code_to_string e.Serve.Proto.code)
            e.Serve.Proto.message;
          Serve.Proto.exit_code e.Serve.Proto.code)

let cache_cmd =
  let op_arg =
    let doc = "Operation: $(b,stats) (default) or $(b,clear)." in
    Arg.(
      value
      & pos 0 (Arg.enum [ ("stats", "stats"); ("clear", "clear") ]) "stats"
      & info [] ~docv:"OP" ~doc)
  in
  let doc = "inspect or clear a running daemon's result cache" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Sends the daemon a cache RPC and prints the stats payload \
         (entries, bytes, hits, misses, coalesced, evictions, disk_hits, \
         ...) as JSON. $(b,clear) drops every in-memory entry and deletes \
         every on-disk entry before reporting. The RPC is answered inline \
         by the connection thread, so it works while the worker fleet is \
         busy or draining.";
      `S Manpage.s_examples;
      `Pre
        "  wfde cache --socket /tmp/wfde.sock\n\
        \  wfde cache clear --socket /tmp/wfde.sock";
    ]
  in
  Cmd.v (Cmd.info "cache" ~doc ~man) Term.(const run_cache $ op_arg $ socket_arg)

(* ------------------------------------------------------------ spans --- *)

let run_spans file normalize =
  match Wfde.Obs.Span.load_file file with
  | Error msg ->
      Format.eprintf "cannot load %s: %s@." file msg;
      2
  | Ok spans ->
      print_string (Wfde.Obs.Span.render ~normalize spans);
      0

let spans_cmd =
  let file_arg =
    let doc = "A wfde-span/1 JSONL file (see 'wfde serve --trace-out')." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let normalize_arg =
    let doc =
      "Omit timestamps: print only the span structure (names, nesting, \
       truncation), which is deterministic — two exports of the same \
       request mix diff clean."
    in
    Arg.(value & flag & info [ "normalize" ] ~doc)
  in
  let doc = "render an exported span file as per-trace profile trees" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Reads wfde-span/1 JSONL and prints one flame-style tree per \
         trace: spans nested under their parents in creation order, \
         each with its total wall time and self time (total minus \
         children). Truncated spans — cut by a deadline, a drain, or a \
         request error — are marked.";
      `S Manpage.s_examples;
      `Pre
        "  wfde serve --socket /tmp/wfde.sock --trace-out /tmp/spans.jsonl &\n\
        \  wfde client run --trace t1 --params '{\"experiments\":[\"e1\"]}'\n\
        \  kill -TERM %1 && wait\n\
        \  wfde spans /tmp/spans.jsonl";
    ]
  in
  Cmd.v (Cmd.info "spans" ~doc ~man)
    Term.(const run_spans $ file_arg $ normalize_arg)

(* ----------------------------------------------------------- fabric --- *)

(* Scale-out dispatch of a sweep or exhaustive check over several
   daemons. Merged stdout is byte-identical to the serial command's;
   scheduling detail (progress counters) goes to stderr, like sweep
   timings. Exit 70 is the --crash-after chaos hook, distinct from
   every normal exit so the harness can assert the crash actually
   happened. *)

let fabric_crashed_exit = 70

let fabric_progress_line (p : Fabric.Coordinator.progress) =
  Format.eprintf
    "fabric: units=%d journal=%d computed=%d lost=%d recomputed=%d \
     requeued=%d slices=%d retries=%d dead-workers=%d mismatches=%d@."
    p.units_total p.units_from_journal p.units_completed p.units_lost_to_crash
    p.units_recomputed p.units_requeued p.frontier_slices p.rpc_retries
    p.workers_dead p.payload_mismatches

let run_fabric_plan ~workers ~window ~checkpoint ~resume ~unit_budget
    ~crash_after ~json_path ~on_json ~exit_of plan =
  let cfg =
    {
      (Fabric.Coordinator.default ~workers) with
      window;
      checkpoint;
      resume;
      unit_budget;
      crash_after;
    }
  in
  match Fabric.Coordinator.run cfg plan with
  | exception Fabric.Coordinator.Crashed k ->
      Format.eprintf
        "fabric: coordinator crashed after %d completed unit(s) \
         (--crash-after); rerun with --resume@."
        k;
      fabric_crashed_exit
  | Error msg ->
      Format.eprintf "fabric: %s@." msg;
      3
  | Ok (r : Fabric.Coordinator.outcome) ->
      print_string r.text;
      fabric_progress_line r.progress;
      let json_failed =
        match json_path with
        | None -> false
        | Some path -> (
            match open_out path with
            | oc ->
                Fun.protect
                  ~finally:(fun () -> close_out oc)
                  (fun () ->
                    output_string oc (Wfde.Json.to_string r.json);
                    output_char oc '\n');
                on_json path;
                false
            | exception Sys_error msg ->
                Format.eprintf "cannot write fabric JSON: %s@." msg;
                true)
      in
      if json_failed then 1 else exit_of r

let run_fabric_sweep ids scale jobs workers window checkpoint resume
    crash_after json_path =
  if not (reject_unknown_ids ids) then 2
  else
    match Fabric.Plan.sweep ~scale ~jobs ids with
    | Error msg ->
        Format.eprintf "%s@." msg;
        2
    | Ok plan ->
        run_fabric_plan ~workers ~window ~checkpoint ~resume ~unit_budget:None
          ~crash_after ~json_path
          ~on_json:(fun path -> Format.eprintf "wrote sweep JSON to %s@." path)
          ~exit_of:(fun r -> if r.Fabric.Coordinator.ok then 0 else 1)
          plan

let run_fabric_check obj_name procs depth horizon mutant_name workers window
    checkpoint resume unit_budget crash_after json_path =
  let fail msg =
    Format.eprintf "%s@." msg;
    2
  in
  match Wfde.Scenario.of_string obj_name with
  | Error msg -> fail msg
  | Ok obj -> (
      let mutant =
        match mutant_name with
        | None -> Ok None
        | Some m -> Result.map Option.some (Wfde.Mutant.of_string m)
      in
      match mutant with
      | Error msg -> fail msg
      | Ok mutant ->
          let plan = Fabric.Plan.check ?procs ~depth ~horizon ?mutant obj in
          run_fabric_plan ~workers ~window ~checkpoint ~resume ~unit_budget
            ~crash_after ~json_path
            ~on_json:(fun path ->
              Format.printf "wrote check outcome JSON to %s@." path)
            ~exit_of:(fun r ->
              let found = not r.Fabric.Coordinator.ok in
              let expected =
                match mutant with Some _ -> found | None -> not found
              in
              if expected then 0 else 1)
            plan)

let fabric_cmd =
  let workers_arg =
    let doc = "Comma-separated worker daemon socket paths." in
    Arg.(
      required
      & opt (some (list string)) None
      & info [ "workers" ] ~docv:"SOCK,SOCK" ~doc)
  in
  let window_arg =
    let doc = "In-flight requests per worker." in
    Arg.(
      value
      & opt (bounded_int ~what:"--window" ~min:1 ~max:64) 2
      & info [ "window" ] ~docv:"K" ~doc)
  in
  let checkpoint_arg =
    let doc =
      "Journal completed units under $(docv) (atomic JSONL, one file per \
       request content key) so a killed coordinator can --resume."
    in
    Arg.(
      value & opt (some string) None & info [ "checkpoint" ] ~docv:"DIR" ~doc)
  in
  let resume_arg =
    let doc =
      "Load the matching journal from --checkpoint and recompute only units \
       it does not hold."
    in
    Arg.(value & flag & info [ "resume" ] ~doc)
  in
  let crash_after_arg =
    let doc =
      "Chaos hook: abort the coordinator (exit 70) once $(docv) units \
       completed this run, after journaling them."
    in
    Arg.(
      value
      & opt (some (bounded_int ~what:"--crash-after" ~min:1 ~max:max_int)) None
      & info [ "crash-after" ] ~docv:"N" ~doc)
  in
  let sweep_json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:"Write the merged wfde-sweep/1 document to $(docv).")
  in
  let sweep =
    let doc = "run an experiment sweep sharded over worker daemons" in
    Cmd.v
      (Cmd.info "sweep" ~doc)
      Term.(
        const run_fabric_sweep $ ids_arg $ scale_arg $ jobs_arg $ workers_arg
        $ window_arg $ checkpoint_arg $ resume_arg $ crash_after_arg
        $ sweep_json_arg)
  in
  let obj_arg =
    let doc =
      "Object to check: register, snapshot, abd, commit-adopt, \
       hb-detector, or link-chaos."
    in
    Arg.(
      value & opt string "register" & info [ "object"; "obj" ] ~docv:"OBJ" ~doc)
  in
  let procs_arg =
    Arg.(
      value
      & opt (some (bounded_int ~what:"--procs" ~min:1 ~max:64)) None
      & info [ "procs"; "n" ] ~docv:"N+1"
          ~doc:"Number of processes (clamped up to the scenario's minimum).")
  in
  let depth_arg =
    Arg.(
      value
      & opt (bounded_int ~what:"--depth" ~min:1 ~max:64) 6
      & info [ "depth"; "d" ] ~docv:"D" ~doc:"Schedule-choice window.")
  in
  let horizon_arg =
    Arg.(
      value
      & opt (bounded_int ~what:"--horizon" ~min:1 ~max:100_000_000) 400
      & info [ "horizon" ] ~docv:"H" ~doc:"Step budget per execution.")
  in
  let mutant_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "mutant" ] ~docv:"M" ~doc:"Plant a bug first (exit 0 = caught).")
  in
  let unit_budget_arg =
    let doc =
      "DPOR executions per check_unit slice; a truncated slice checkpoints \
       its frontier and resumes exactly, possibly on another worker."
    in
    Arg.(
      value
      & opt (some (bounded_int ~what:"--unit-budget" ~min:1 ~max:max_int)) None
      & info [ "unit-budget" ] ~docv:"B" ~doc)
  in
  let check_json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:"Also write the merged outcome as a JSON document to $(docv).")
  in
  let check =
    let doc = "model-check a shared object sharded over worker daemons" in
    Cmd.v (Cmd.info "check" ~doc)
      Term.(
        const run_fabric_check $ obj_arg $ procs_arg $ depth_arg $ horizon_arg
        $ mutant_arg $ workers_arg $ window_arg $ checkpoint_arg $ resume_arg
        $ unit_budget_arg $ crash_after_arg $ check_json_arg)
  in
  let doc = "scale a sweep or exhaustive check out over worker daemons" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Shards the request into its natural work units (one experiment per \
         unit for sweeps; one DPOR pattern/root-branch per unit for checks), \
         dispatches them over the given 'wfde serve' sockets with a bounded \
         per-worker window, and merges the unit payloads into output \
         byte-identical to the serial command. Units owned by a crashed or \
         draining worker are reassigned; with --checkpoint every completed \
         unit is journaled so a killed coordinator resumes exactly where it \
         stopped.";
      `S Manpage.s_examples;
      `Pre
        "  wfde serve --socket /tmp/w1.sock &\n\
        \  wfde serve --socket /tmp/w2.sock &\n\
        \  wfde fabric sweep e1 e2 e6 --workers /tmp/w1.sock,/tmp/w2.sock\n\
        \  wfde fabric check --object abd --procs 3 --depth 8 \\\n\
        \    --workers /tmp/w1.sock,/tmp/w2.sock --checkpoint /tmp/ckpt \\\n\
        \    --unit-budget 50\n\
        \  wfde fabric sweep e1 e2 --workers /tmp/w1.sock --resume \\\n\
        \    --checkpoint /tmp/ckpt";
    ]
  in
  Cmd.group (Cmd.info "fabric" ~doc ~man) [ sweep; check ]

(* ------------------------------------------------------------ group --- *)

let group =
  let doc =
    "reproduce the results of 'On the weakest failure detector ever'"
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the experiment suite of this reproduction of Guerraoui, \
         Herlihy, Kuznetsov, Lynch and Newport (PODC'07 / Distributed \
         Computing 2009): the Upsilon-based set-agreement protocols \
         (Figures 1-2), the stable-detector-to-Upsilon^f extraction \
         (Figure 3), the pairwise detector reductions, the Theorem 1/5 \
         adversary, and the Omega_n consensus booster, each validated \
         against the paper's claims on a simulated asynchronous \
         shared-memory system.";
      `S Manpage.s_examples;
      `Pre
        "  wfde run e1 e5\n  wfde run --scale 4\n  wfde list\n\
        \  wfde run e5 e11 d1 d2 --detector-impl hb --gst 60 --loss 40\n\
        \  wfde check --detector-impl hb --gst 12 --loss 50 --depth 5 \
         --procs 2\n\
        \  wfde trace -p fig2 --seed 9 --n 4 --f 2\n\
        \  wfde trace -p fig1 --seed 7 --out /tmp/fig1.jsonl\n\
        \  wfde stats e1 e7 --json /tmp/metrics.json\n\
        \  wfde check --object abd --procs 3 --depth 10\n\
        \  wfde check --object abd --procs 3 --depth 8 -j 4\n\
        \  wfde check --object snapshot --procs 3 --depth 12 \
         --mutant snapshot-single-collect --json /tmp/cex.json\n\
        \  wfde sweep e1 e2 -j 4 --json /tmp/sweep.json";
    ]
  in
  let default =
    Term.(const run_ids $ ids_arg $ scale_arg $ jobs_arg $ impl_term)
  in
  Cmd.group ~default
    (Cmd.info "wfde" ~version:"1.0.0" ~doc ~man)
    [
      run_cmd;
      list_cmd;
      trace_cmd;
      stats_cmd;
      check_cmd;
      sweep_cmd;
      fabric_cmd;
      serve_cmd;
      client_cmd;
      cache_cmd;
      spans_cmd;
    ]

let () = exit (Cmd.eval' group)
